(* Tests for dfr_core: state space, BWG, classification, reduction,
   baselines and the Theorem 1-3 checker. *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core

let check = Alcotest.check

let cube2 = Net.wormhole (Topology.hypercube 2) ~vcs:2
let cube3 = Net.wormhole (Topology.hypercube 3) ~vcs:2
let mesh33_1 = Net.wormhole (Topology.mesh [| 3; 3 |]) ~vcs:1
let saf33 = Net.store_and_forward (Topology.mesh [| 3; 3 |]) ~classes:2
let chan net src dim dir vc = Buf.id (Net.channel net ~src ~dim ~dir ~vc)

let deadlock_free v = Checker.is_deadlock_free v

(* ---------------- state space ---------------- *)

let test_space_reachability_ecube () =
  let space = State_space.build cube2 Hypercube_wormhole.ecube in
  (* B2 channels never used by ecube *)
  let b2 = chan cube2 0 0 Topology.Plus 1 in
  let reachable_any = ref false in
  for dest = 0 to 3 do
    if State_space.is_reachable space ~buf:b2 ~dest then reachable_any := true
  done;
  check Alcotest.bool "B2 unreachable under ecube" false !reachable_any;
  (* the dim-1 B1 channel out of node 0 is reachable only for dests above *)
  let b1d1 = chan cube2 0 1 Topology.Plus 0 in
  check Alcotest.bool "reachable for dest 2" true
    (State_space.is_reachable space ~buf:b1d1 ~dest:2);
  check Alcotest.bool "not for dest 1" false
    (State_space.is_reachable space ~buf:b1d1 ~dest:1)

let test_space_input_dependence () =
  (* ecube: a packet that corrected dim 0 and sits in the dim-0 channel
     into node 1 can only continue upward *)
  let space = State_space.build cube2 Hypercube_wormhole.ecube in
  let b = chan cube2 0 0 Topology.Plus 0 in
  check (Alcotest.list Alcotest.int) "continues dim 1"
    [ chan cube2 1 1 Topology.Plus 0 ]
    (State_space.outputs space ~buf:b ~dest:3);
  check (Alcotest.list Alcotest.int) "arrived: no outputs" []
    (State_space.outputs space ~buf:b ~dest:1)

let test_space_arrived () =
  let space = State_space.build cube2 Hypercube_wormhole.efa in
  let b = chan cube2 0 0 Topology.Plus 0 in
  check Alcotest.bool "arrived at 1" true (State_space.arrived space ~buf:b ~dest:1);
  check Alcotest.bool "not arrived at 3" false (State_space.arrived space ~buf:b ~dest:3)

let test_space_no_stuck_states () =
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e None in
      let space = State_space.build net e.Registry.algo in
      check Alcotest.int (e.Registry.name ^ " no dead ends") 0
        (List.length (State_space.stuck_states space)))
    Registry.all

let test_move_graph_matches_outputs () =
  let space = State_space.build cube2 Hypercube_wormhole.efa in
  let g = State_space.move_graph space ~dest:3 in
  State_space.iter_reachable space (fun ~buf ~dest ->
      if dest = 3 then
        List.iter
          (fun o ->
            check Alcotest.bool "edge present" true (Dfr_graph.Csr.mem_edge g buf o))
          (State_space.outputs space ~buf ~dest))

(* ---------------- BWG structure ---------------- *)

let test_bwg_ecube_acyclic () =
  let space = State_space.build cube3 Hypercube_wormhole.ecube in
  check Alcotest.bool "acyclic" true (Bwg.is_acyclic (Bwg.build space))

let test_bwg_efa_acyclic_2_3_4 () =
  List.iter
    (fun n ->
      let net = Net.wormhole (Topology.hypercube n) ~vcs:2 in
      let space = State_space.build net Hypercube_wormhole.efa in
      let bwg = Bwg.build space in
      check Alcotest.bool (Printf.sprintf "efa %d-cube acyclic" n) true
        (Bwg.is_acyclic bwg);
      check Alcotest.bool "wait connected" true (Bwg.is_wait_connected bwg))
    [ 2; 3; 4 ]

let test_bwg_duato_acyclic () =
  let space = State_space.build cube3 Hypercube_wormhole.duato in
  check Alcotest.bool "acyclic" true (Bwg.is_acyclic (Bwg.build space))

let test_bwg_efa_relaxed_cyclic () =
  let space = State_space.build cube2 Hypercube_wormhole.efa_relaxed in
  let bwg = Bwg.build space in
  check Alcotest.bool "cyclic" false (Bwg.is_acyclic bwg);
  check Alcotest.bool "no order" true (Bwg.topological_order bwg = None)

let test_bwg_waits_only_b1_for_efa () =
  (* EFA packets wait only on B1 channels, so no BWG edge targets a B2 *)
  let space = State_space.build cube3 Hypercube_wormhole.efa in
  let bwg = Bwg.build space in
  Dfr_graph.Digraph.iter_edges
    (fun _ w ->
      match Buf.kind (Net.buffer cube3 w) with
      | Buf.Channel { vc; _ } ->
        if vc <> 0 then Alcotest.fail "edge into a B2 buffer"
      | _ -> Alcotest.fail "edge into a non-channel")
    (Bwg.graph bwg)

let test_bwg_witnesses_present () =
  let space = State_space.build cube2 Hypercube_wormhole.efa in
  let bwg = Bwg.build space in
  Dfr_graph.Digraph.iter_edges
    (fun q w ->
      check Alcotest.bool "witnessed" true (Bwg.witnesses bwg q w <> []))
    (Bwg.graph bwg)

let test_bwg_wormhole_closure () =
  (* efa-relaxed on the 2-cube: a packet in B1+^0@(0,0) with dest 3 can
     continue to (1,0) and wait there on B1 of dim 1: an indirect edge *)
  let space = State_space.build cube2 Hypercube_wormhole.efa_relaxed in
  let bwg = Bwg.build space in
  let q1 = chan cube2 0 0 Topology.Plus 0 in
  let w = chan cube2 1 1 Topology.Plus 0 in
  check Alcotest.bool "indirect edge" true (Dfr_graph.Digraph.mem_edge (Bwg.graph bwg) q1 w)

let test_bwg_saf_no_closure () =
  (* SAF: a blocked packet occupies one buffer, so edges only go to the
     waits of the state itself (always one hop away) *)
  let space = State_space.build saf33 Mesh_saf.two_buffer in
  let bwg = Bwg.build space in
  Dfr_graph.Digraph.iter_edges
    (fun q w ->
      let qb = Net.buffer saf33 q and wb = Net.buffer saf33 w in
      let qn = Buf.head_node qb and wn = Buf.head_node wb in
      let topo = Net.topology_exn saf33 in
      if Buf.is_transit qb then
        check Alcotest.bool "neighbouring nodes" true
          (qn = wn || Topology.distance topo qn wn = 1))
    (Bwg.graph bwg)

let test_bwg_not_wait_connected_flagged () =
  (* an artificial algorithm with an empty waiting set *)
  let broken =
    Algo.make ~name:"broken" ~wait:Algo.Any_wait
      ~route:(fun net b ~dest -> Hypercube_wormhole.efa.Algo.route net b ~dest)
      ~waits:(fun _ _ ~dest:_ -> [])
      ()
  in
  let space = State_space.build cube2 broken in
  let bwg = Bwg.build space in
  check Alcotest.bool "not wait connected" false (Bwg.is_wait_connected bwg);
  check Alcotest.bool "violations listed" true (Bwg.unconnected_states bwg <> [])

let test_bwg_reduced_wait_sets () =
  let space = State_space.build saf33 Mesh_saf.two_buffer in
  match State_space.reduced_waits space with
  | None -> Alcotest.fail "hint expected"
  | Some ws ->
    let bwg' = Bwg.build ~wait_sets:ws space in
    check Alcotest.bool "BWG' acyclic" true (Bwg.is_acyclic bwg');
    check Alcotest.bool "BWG' wait-connected" true (Bwg.is_wait_connected bwg');
    let bwg = Bwg.build space in
    check Alcotest.bool "full BWG cyclic" false (Bwg.is_acyclic bwg)

let test_bwg_to_dot () =
  let space = State_space.build cube2 Hypercube_wormhole.ecube in
  let dot = Bwg.to_dot (Bwg.build space) in
  check Alcotest.bool "nonempty dot" true (String.length dot > 100)

(* ---------------- deadlock configurations (knots) ---------------- *)

let test_knot_absent_for_free_algorithms () =
  List.iter
    (fun (e : Registry.entry) ->
      if e.Registry.expected_deadlock_free = Some true then begin
        let net = Registry.network_for e None in
        let space = State_space.build net e.Registry.algo in
        check Alcotest.bool (e.Registry.name ^ " no knot") true
          (Deadlock_config.find space = None)
      end)
    Registry.all

let test_knot_found_and_valid () =
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> Alcotest.fail "missing entry"
      | Some e -> (
        let net = Registry.network_for e None in
        let space = State_space.build net e.Registry.algo in
        match Deadlock_config.find space with
        | None -> Alcotest.fail (name ^ ": knot expected")
        | Some config ->
          check Alcotest.bool (name ^ " verifies") true
            (Deadlock_config.verify space config)))
    [ "efa-relaxed"; "unrestricted-hypercube"; "unrestricted-mesh";
      "unrestricted-torus"; "single-buffer" ]

let test_knot_verify_rejects_bogus () =
  let space = State_space.build cube2 Hypercube_wormhole.efa_relaxed in
  check Alcotest.bool "empty config rejected" false (Deadlock_config.verify space []);
  check Alcotest.bool "unsaturated config rejected" false
    (Deadlock_config.verify space [ (chan cube2 0 0 Topology.Plus 0, 3) ])

(* ---------------- cycle classification ---------------- *)

let test_classify_relaxed_efa_true_cycle () =
  let space = State_space.build cube2 Hypercube_wormhole.efa_relaxed in
  let bwg = Bwg.build space in
  let cycles, exhaustive = Bwg.cycles bwg in
  check Alcotest.bool "cycles enumerated" true (cycles <> []);
  check Alcotest.bool "exhaustive" true exhaustive;
  match Cycle_class.first_true_cycle bwg cycles with
  | None -> Alcotest.fail "a True Cycle exists (Theorem 6)"
  | Some (cycle, packets) ->
    check Alcotest.int "one packet per edge" (List.length cycle) (List.length packets);
    (* pairwise disjoint occupied paths *)
    let all = List.concat_map (fun p -> p.Cycle_class.path) packets in
    check Alcotest.int "disjoint paths" (List.length all)
      (List.length (List.sort_uniq compare all));
    (* each packet's waited buffer is occupied by some other packet *)
    List.iter
      (fun (p : Cycle_class.packet) ->
        check Alcotest.bool "wait target occupied" true
          (List.exists
             (fun (q : Cycle_class.packet) ->
               q != p && List.mem p.Cycle_class.waits_for q.Cycle_class.path)
             packets))
      packets

(* Regression: the assignment search visits edges fewest-candidates-first,
   and used to return the chosen packets in that search order.  Consumers
   (pp_verdict, JSON reports) zip packets with cycle edges positionally,
   so the witness must come back in cycle order: packet k starts at cycle
   vertex k and waits for vertex k+1 (wrapping). *)
let test_classify_packets_in_cycle_order () =
  let nets =
    [
      (cube2, Hypercube_wormhole.efa_relaxed);
      (mesh33_1, Mesh_wormhole.unrestricted);
    ]
  in
  let checked = ref 0 in
  List.iter
    (fun (net, algo) ->
      let space = State_space.build net algo in
      let bwg = Bwg.build space in
      let cycles, _ = Bwg.cycles bwg in
      List.iter
        (fun cycle ->
          match Cycle_class.classify bwg cycle with
          | Cycle_class.False_resource_cycle _ -> ()
          | Cycle_class.True_cycle packets ->
            incr checked;
            let len = List.length cycle in
            check Alcotest.int "one packet per edge" len (List.length packets);
            List.iteri
              (fun k (p : Cycle_class.packet) ->
                check Alcotest.int
                  (Printf.sprintf "packet %d starts at cycle vertex %d" k k)
                  (List.nth cycle k)
                  (List.hd p.Cycle_class.path);
                check Alcotest.int
                  (Printf.sprintf "packet %d waits for vertex %d" k
                     ((k + 1) mod len))
                  (List.nth cycle ((k + 1) mod len))
                  p.Cycle_class.waits_for)
              packets)
        cycles)
    nets;
  check Alcotest.bool "some True Cycles were checked" true (!checked > 0)

(* Boundary regression for the path enumerator: reaching the cap exactly
   is not truncation.  A diamond has exactly two 0->3 paths; with the cap
   at two, the old code flagged the enumeration non-exhaustive (and the
   checker downgraded to Unknown) although nothing was missed. *)
let test_simple_paths_exact_cap_exhaustive () =
  let g = Dfr_graph.Csr.of_edges 5 [ (0, 1); (0, 2); (1, 3); (2, 3); (0, 4) ] in
  let limits = { Cycle_class.default_limits with Cycle_class.max_paths_per_edge = 2 } in
  let paths, exhaustive = Cycle_class.simple_paths ~limits g ~start:0 ~target:3 in
  check Alcotest.int "both paths found" 2 (List.length paths);
  check Alcotest.bool "exactly-at-cap is exhaustive" true exhaustive

let test_simple_paths_beyond_cap_truncated () =
  let g =
    Dfr_graph.Csr.of_edges 5
      [ (0, 1); (0, 2); (0, 4); (1, 3); (2, 3); (4, 3) ]
  in
  let limits = { Cycle_class.default_limits with Cycle_class.max_paths_per_edge = 2 } in
  let paths, exhaustive = Cycle_class.simple_paths ~limits g ~start:0 ~target:3 in
  check Alcotest.int "cap respected" 2 (List.length paths);
  check Alcotest.bool "third path flags truncation" false exhaustive

let test_simple_paths_length_cap_truncated () =
  let g = Dfr_graph.Csr.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let limits = { Cycle_class.default_limits with Cycle_class.max_path_length = 3 } in
  let paths, exhaustive = Cycle_class.simple_paths ~limits g ~start:0 ~target:4 in
  check Alcotest.int "path too long is not returned" 0 (List.length paths);
  check Alcotest.bool "length cut flags truncation" false exhaustive

let test_classify_rejects_non_cycle () =
  let space = State_space.build cube2 Hypercube_wormhole.efa_relaxed in
  let bwg = Bwg.build space in
  Alcotest.check_raises "not a BWG cycle"
    (Invalid_argument "Cycle_class.classify: not a BWG cycle") (fun () ->
      ignore (Cycle_class.classify bwg [ 0; 1 ]))

(* ---------------- checker verdicts (the headline results) ---------------- *)

let test_checker_matches_ground_truth () =
  List.iter
    (fun (e : Registry.entry) ->
      match e.Registry.expected_deadlock_free with
      | None -> ()
      | Some expected ->
        let net = Registry.network_for e None in
        let v = Checker.verdict net e.Registry.algo in
        check
          (Alcotest.option Alcotest.bool)
          (e.Registry.name ^ " verdict")
          (Some expected) (deadlock_free v))
    Registry.all

let test_theorem1_proofs () =
  (* Theorem 5: EFA's BWG is acyclic; same for ecube and duato *)
  List.iter
    (fun algo ->
      match Checker.verdict cube3 algo with
      | Checker.Deadlock_free Checker.Acyclic_bwg -> ()
      | v ->
        Alcotest.failf "expected Theorem 1 proof, got %a" (Checker.pp_verdict cube3) v)
    [ Hypercube_wormhole.ecube; Hypercube_wormhole.duato; Hypercube_wormhole.efa ]

let test_theorem3_two_buffer () =
  (* Theorem 4: Two-Buffer has a cyclic BWG but a verified BWG' *)
  match Checker.verdict saf33 Mesh_saf.two_buffer with
  | Checker.Deadlock_free (Checker.Reduced_bwg { via_hint; full_bwg_cycles; _ }) ->
    check Alcotest.bool "via hint" true via_hint;
    check Alcotest.bool "full BWG had cycles" true (full_bwg_cycles > 0)
  | v -> Alcotest.failf "expected Theorem 3 proof, got %a" (Checker.pp_verdict saf33) v

let test_theorem3_search_without_hint () =
  (* Strip the hint: the automatic reduction search must still find a BWG'
     on a small mesh *)
  let bare = { Mesh_saf.two_buffer with Algo.reduced_waits = None } in
  let net = Net.store_and_forward (Topology.mesh [| 2; 2 |]) ~classes:2 in
  match Checker.verdict net bare with
  | Checker.Deadlock_free (Checker.Reduced_bwg { via_hint; removed; _ }) ->
    check Alcotest.bool "by search" false via_hint;
    check Alcotest.bool "removed some waits" true (removed <> [])
  | v -> Alcotest.failf "expected search-found BWG', got %a" (Checker.pp_verdict net) v

let test_theorem6_relaxation_deadlocks () =
  match Checker.verdict cube2 Hypercube_wormhole.efa_relaxed with
  | Checker.Deadlock_possible _ -> ()
  | v -> Alcotest.failf "Theorem 6 violated: %a" (Checker.pp_verdict cube2) v

let test_checker_flags_broken_algorithm () =
  let broken =
    Algo.make ~name:"no-waits" ~wait:Algo.Any_wait
      ~route:(fun net b ~dest -> Hypercube_wormhole.efa.Algo.route net b ~dest)
      ~waits:(fun _ _ ~dest:_ -> [])
      ()
  in
  match Checker.verdict cube2 broken with
  | Checker.Deadlock_possible (Checker.Not_wait_connected states) ->
    check Alcotest.bool "states reported" true (states <> [])
  | v -> Alcotest.failf "expected wait-connectivity failure, got %a"
           (Checker.pp_verdict cube2) v

let test_checker_flags_stuck_states () =
  (* a routing relation with a genuine dead end: packets entering node 3
     for dest 0 have nowhere to go *)
  let stuck =
    Algo.make ~name:"dead-end" ~wait:Algo.Any_wait
      ~route:(fun net b ~dest ->
        let head = Buf.head_node b in
        if head = 3 && dest = 0 then []
        else Hypercube_wormhole.unrestricted.Algo.route net b ~dest)
      ()
  in
  match Checker.verdict cube2 stuck with
  | Checker.Deadlock_possible (Checker.Stuck_states states) ->
    check Alcotest.bool "dead ends reported" true (states <> [])
  | v -> Alcotest.failf "expected stuck states, got %a" (Checker.pp_verdict cube2) v

let test_bigger_instances_still_fast () =
  (* 4-cube and 5x5 meshes: the checker must stay well under a second *)
  let cube4 = Net.wormhole (Topology.hypercube 4) ~vcs:2 in
  check (Alcotest.option Alcotest.bool) "efa 4-cube" (Some true)
    (deadlock_free (Checker.verdict cube4 Hypercube_wormhole.efa));
  let mesh55 = Net.wormhole (Topology.mesh [| 5; 5 |]) ~vcs:1 in
  check (Alcotest.option Alcotest.bool) "west-first 5x5" (Some true)
    (deadlock_free (Checker.verdict mesh55 Mesh_wormhole.west_first));
  let mesh234 = Net.wormhole (Topology.mesh [| 2; 3; 4 |]) ~vcs:1 in
  check (Alcotest.option Alcotest.bool) "dimension-order 2x3x4" (Some true)
    (deadlock_free (Checker.verdict mesh234 Mesh_wormhole.dimension_order));
  check (Alcotest.option Alcotest.bool) "negative-first 2x3x4" (Some true)
    (deadlock_free (Checker.verdict mesh234 Mesh_wormhole.negative_first))

let test_ring_sizes () =
  List.iter
    (fun k ->
      let net = Net.wormhole (Topology.ring k) ~vcs:2 in
      check (Alcotest.option Alcotest.bool)
        (Printf.sprintf "dateline ring %d" k)
        (Some true)
        (deadlock_free (Checker.verdict net Torus_wormhole.dateline)))
    [ 3; 4; 5; 6; 8 ]

let test_wait_everywhere_efa_still_free () =
  (* ablation: EFA that waits on every permitted output is an Any_wait
     algorithm; its full BWG acquires cycles through the B2 waits but a
     BWG' must exist (the specific-wait rule is one) *)
  let v = Checker.verdict cube2 (Algo.wait_everywhere Hypercube_wormhole.efa) in
  check (Alcotest.option Alcotest.bool) "still deadlock-free" (Some true)
    (deadlock_free v)

(* ---------------- baselines: CDG and Duato's condition ---------------- *)

let test_cdg_certifies_ecube_only () =
  let space_ecube = State_space.build cube3 Hypercube_wormhole.ecube in
  check Alcotest.bool "ecube certified" true (Cdg.deadlock_free space_ecube);
  let space_efa = State_space.build cube3 Hypercube_wormhole.efa in
  check Alcotest.bool "efa rejected" false (Cdg.deadlock_free space_efa);
  let space_duato = State_space.build cube3 Hypercube_wormhole.duato in
  check Alcotest.bool "duato rejected" false (Cdg.deadlock_free space_duato)

let test_cdg_turn_models () =
  let space = State_space.build mesh33_1 Mesh_wormhole.west_first in
  check Alcotest.bool "west-first certified" true (Cdg.deadlock_free space);
  let space_u = State_space.build mesh33_1 Mesh_wormhole.unrestricted in
  check Alcotest.bool "unrestricted rejected" false (Cdg.deadlock_free space_u)

let test_duato_condition_certifies_duato () =
  let space = State_space.build cube3 Hypercube_wormhole.duato in
  check Alcotest.bool "duato certified" true (Duato_condition.deadlock_free space)

let test_duato_condition_rejects_efa_on_3cube () =
  (* the partially adaptive use of the escape channels creates usage
     cycles from dimension 3 on, exactly the paper's motivation *)
  let space2 = State_space.build cube2 Hypercube_wormhole.efa in
  check Alcotest.bool "2-cube: still acyclic" true (Duato_condition.deadlock_free space2);
  let space3 = State_space.build cube3 Hypercube_wormhole.efa in
  let r = Duato_condition.analyze space3 in
  check Alcotest.bool "escape connected" true r.Duato_condition.connected;
  check Alcotest.bool "usage cycles" false r.Duato_condition.acyclic;
  check Alcotest.bool "rejected" false r.Duato_condition.certified

let test_bwg_beats_baselines () =
  (* the separation the paper claims: algorithms certified by the BWG
     technique but by neither baseline *)
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> Alcotest.fail "missing"
      | Some e ->
        let net = Registry.network_for e None in
        let space = State_space.build net e.Registry.algo in
        check Alcotest.bool (name ^ " cdg rejects") false (Cdg.deadlock_free space);
        check Alcotest.bool (name ^ " duato rejects") false
          (Duato_condition.deadlock_free space);
        check
          (Alcotest.option Alcotest.bool)
          (name ^ " bwg certifies") (Some true)
          (deadlock_free (Checker.verdict net e.Registry.algo)))
    [ "efa"; "two-buffer" ]

let suite =
  [
    Alcotest.test_case "space reachability (ecube)" `Quick test_space_reachability_ecube;
    Alcotest.test_case "space input dependence" `Quick test_space_input_dependence;
    Alcotest.test_case "space arrived" `Quick test_space_arrived;
    Alcotest.test_case "no stuck states in catalogue" `Quick test_space_no_stuck_states;
    Alcotest.test_case "move graph matches outputs" `Quick test_move_graph_matches_outputs;
    Alcotest.test_case "BWG ecube acyclic" `Quick test_bwg_ecube_acyclic;
    Alcotest.test_case "BWG efa acyclic n=2,3,4 (Thm 5)" `Quick test_bwg_efa_acyclic_2_3_4;
    Alcotest.test_case "BWG duato acyclic" `Quick test_bwg_duato_acyclic;
    Alcotest.test_case "BWG efa-relaxed cyclic" `Quick test_bwg_efa_relaxed_cyclic;
    Alcotest.test_case "BWG efa targets only B1" `Quick test_bwg_waits_only_b1_for_efa;
    Alcotest.test_case "BWG witnesses present" `Quick test_bwg_witnesses_present;
    Alcotest.test_case "BWG wormhole closure" `Quick test_bwg_wormhole_closure;
    Alcotest.test_case "BWG SAF locality" `Quick test_bwg_saf_no_closure;
    Alcotest.test_case "BWG flags missing waits" `Quick test_bwg_not_wait_connected_flagged;
    Alcotest.test_case "BWG' from hint (Thm 4)" `Quick test_bwg_reduced_wait_sets;
    Alcotest.test_case "BWG dot export" `Quick test_bwg_to_dot;
    Alcotest.test_case "knots absent for free algorithms" `Quick
      test_knot_absent_for_free_algorithms;
    Alcotest.test_case "knots found for broken algorithms" `Quick test_knot_found_and_valid;
    Alcotest.test_case "knot verify rejects bogus" `Quick test_knot_verify_rejects_bogus;
    Alcotest.test_case "classify relaxed-efa True Cycle" `Quick
      test_classify_relaxed_efa_true_cycle;
    Alcotest.test_case "classify rejects non-cycles" `Quick test_classify_rejects_non_cycle;
    Alcotest.test_case "True-Cycle packets come back in cycle order" `Quick
      test_classify_packets_in_cycle_order;
    Alcotest.test_case "simple_paths: exact cap stays exhaustive" `Quick
      test_simple_paths_exact_cap_exhaustive;
    Alcotest.test_case "simple_paths: beyond cap truncates" `Quick
      test_simple_paths_beyond_cap_truncated;
    Alcotest.test_case "simple_paths: length cap truncates" `Quick
      test_simple_paths_length_cap_truncated;
    Alcotest.test_case "checker matches ground truth" `Quick test_checker_matches_ground_truth;
    Alcotest.test_case "Theorem 1 proofs" `Quick test_theorem1_proofs;
    Alcotest.test_case "Theorem 3 via hint (Thm 4)" `Quick test_theorem3_two_buffer;
    Alcotest.test_case "Theorem 3 via search" `Quick test_theorem3_search_without_hint;
    Alcotest.test_case "Theorem 6 relaxation deadlocks" `Quick
      test_theorem6_relaxation_deadlocks;
    Alcotest.test_case "checker flags missing waits" `Quick test_checker_flags_broken_algorithm;
    Alcotest.test_case "checker flags dead ends" `Quick test_checker_flags_stuck_states;
    Alcotest.test_case "bigger instances" `Quick test_bigger_instances_still_fast;
    Alcotest.test_case "dateline on several rings" `Quick test_ring_sizes;
    Alcotest.test_case "wait-everywhere EFA ablation" `Quick
      test_wait_everywhere_efa_still_free;
    Alcotest.test_case "CDG certifies ecube only" `Quick test_cdg_certifies_ecube_only;
    Alcotest.test_case "CDG turn models" `Quick test_cdg_turn_models;
    Alcotest.test_case "Duato condition certifies duato" `Quick
      test_duato_condition_certifies_duato;
    Alcotest.test_case "Duato condition rejects efa (3-cube)" `Quick
      test_duato_condition_rejects_efa_on_3cube;
    Alcotest.test_case "BWG beats both baselines" `Quick test_bwg_beats_baselines;
  ]

(* ---------------- extensions: new algorithms, ablations ---------------- *)

let test_double_y_verdict () =
  let net = Net.wormhole (Topology.mesh [| 4; 4 |]) ~vcs:2 in
  match Checker.verdict net Mesh_wormhole.double_y with
  | Checker.Deadlock_free _ -> ()
  | v -> Alcotest.failf "double-y should be free: %a" (Checker.pp_verdict net) v

let test_hop_class_verdict_theorem1 () =
  let net = Net.store_and_forward (Topology.mesh [| 3; 3 |]) ~classes:5 in
  match Checker.verdict net Mesh_saf.hop_class with
  | Checker.Deadlock_free Checker.Acyclic_bwg -> ()
  | v -> Alcotest.failf "hop-class is the classic acyclic ordering: %a"
           (Checker.pp_verdict net) v

let test_duato_torus_verdict () =
  List.iter
    (fun topo ->
      let net = Net.wormhole topo ~vcs:3 in
      match Checker.verdict net Torus_wormhole.duato_torus with
      | Checker.Deadlock_free _ -> ()
      | v -> Alcotest.failf "duato-torus should be free: %a" (Checker.pp_verdict net) v)
    [ Topology.ring 5; Topology.torus [| 4; 4 |] ]

let test_every_pair_relaxation_deadlocks () =
  (* Theorem 6: each single relaxed pair already deadlocks, on the cube
     that contains both dimensions *)
  let net = Net.wormhole (Topology.hypercube 3) ~vcs:2 in
  List.iter
    (fun (l, i) ->
      let algo = Hypercube_wormhole.efa_relaxed_pair ~l ~i in
      match Checker.verdict net algo with
      | Checker.Deadlock_possible _ -> ()
      | v ->
        Alcotest.failf "pair (%d,%d) must deadlock: %a" l i
          (Checker.pp_verdict net) v)
    [ (0, 1); (0, 2); (1, 2) ]

let test_pair_relaxation_cycle_uses_both_dimensions () =
  (* Theorem 6's proof shape: relaxing pair (l, i) creates a True Cycle
     over B1 channels of dimensions l and i, both directions each *)
  let net = Net.wormhole (Topology.hypercube 3) ~vcs:2 in
  let algo = Hypercube_wormhole.efa_relaxed_pair ~l:0 ~i:2 in
  let space = State_space.build net algo in
  let bwg = Bwg.build space in
  (* the full BWG has far too many (mixed) cycles to enumerate; restrict to
     the pair's B1 channels — any cycle of the induced subgraph is a BWG
     cycle *)
  let keep buf =
    match Buf.kind (Net.buffer net buf) with
    | Buf.Channel { dim; vc = 0; _ } -> dim = 0 || dim = 2
    | _ -> false
  in
  let induced = Dfr_graph.Digraph.induced (Bwg.graph bwg) ~keep in
  let candidates = Dfr_graph.Cycles.enumerate induced in
  check Alcotest.bool "cycles over the pair's B1 channels exist" true
    (candidates <> []);
  match Cycle_class.first_true_cycle bwg candidates with
  | Some (cycle, _) ->
    let dims =
      List.sort_uniq compare
        (List.filter_map
           (fun buf ->
             match Buf.kind (Net.buffer net buf) with
             | Buf.Channel { dim; _ } -> Some dim
             | _ -> None)
           cycle)
    in
    check (Alcotest.list Alcotest.int) "both dimensions used" [ 0; 2 ] dims
  | None -> Alcotest.fail "a True Cycle over the relaxed pair exists"

let test_vct_matches_saf_verdicts () =
  (* the paper's model treats VCT like SAF for deadlock purposes *)
  let topo = Topology.mesh [| 3; 3 |] in
  let saf = Net.store_and_forward topo ~classes:2 in
  let vct = Net.virtual_cut_through topo ~classes:2 in
  check (Alcotest.option Alcotest.bool) "two-buffer same verdict"
    (deadlock_free (Checker.verdict saf Mesh_saf.two_buffer))
    (deadlock_free (Checker.verdict vct Mesh_saf.two_buffer));
  let saf1 = Net.store_and_forward topo ~classes:1 in
  let vct1 = Net.virtual_cut_through topo ~classes:1 in
  check (Alcotest.option Alcotest.bool) "single-buffer same verdict"
    (deadlock_free (Checker.verdict saf1 Mesh_saf.single_buffer))
    (deadlock_free (Checker.verdict vct1 Mesh_saf.single_buffer))

let test_closure_ablation_unsound () =
  (* without the wormhole continuation closure the incoherent example's
     self-loops disappear and the BWG wrongly looks deadlock-free: the
     closure is load-bearing *)
  let net = Incoherent_example.network () in
  let space = State_space.build net Incoherent_example.algo in
  let full = Bwg.build space in
  let direct = Bwg.build ~indirect:false space in
  check Alcotest.bool "full BWG cyclic" false (Bwg.is_acyclic full);
  check Alcotest.bool "direct-only BWG acyclic (wrongly)" true (Bwg.is_acyclic direct)

let test_closure_matches_for_saf () =
  (* for packet-buffered switching the closure changes nothing *)
  let space = State_space.build saf33 Mesh_saf.two_buffer in
  let a = Bwg.build space and b = Bwg.build ~indirect:false space in
  check Alcotest.bool "same graph" true
    (Dfr_graph.Digraph.equal (Bwg.graph a) (Bwg.graph b))

let test_sparse_state_table_matches_dense () =
  (* the sparse per-destination state table only kicks in automatically
     above ~4M (buffer, dest) pairs, so force it on small networks and
     demand the identical BWG and acyclicity as the dense layout *)
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e None in
      let dense = State_space.build ~storage:`Dense net e.Registry.algo in
      let sparse = State_space.build ~storage:`Sparse net e.Registry.algo in
      let bd = Bwg.build dense and bs = Bwg.build sparse in
      check Alcotest.bool
        (e.Registry.name ^ " sparse = dense BWG")
        true
        (Dfr_graph.Digraph.equal (Bwg.graph bd) (Bwg.graph bs));
      check Alcotest.bool
        (e.Registry.name ^ " sparse = dense acyclicity")
        (Bwg.is_acyclic bd) (Bwg.is_acyclic bs);
      (* reachability agrees state by state *)
      let buffers = Net.num_buffers net and nodes = Net.num_nodes net in
      for buf = 0 to buffers - 1 do
        for dest = 0 to nodes - 1 do
          if
            State_space.is_reachable dense ~buf ~dest
            <> State_space.is_reachable sparse ~buf ~dest
          then
            Alcotest.failf "%s: reachability differs at buf %d dest %d"
              e.Registry.name buf dest
        done
      done)
    Registry.all

let test_hybrid_closures_match_dense () =
  (* the hybrid sparse/dense closure rows are an allocation strategy, not a
     semantics change: forcing every row dense must yield the identical
     graph (and hence identical verdict material) on every catalogue entry *)
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e None in
      let space = State_space.build net e.Registry.algo in
      let hybrid = Bwg.build space in
      let dense = Bwg.build ~dense_closures:true space in
      check Alcotest.bool
        (e.Registry.name ^ " hybrid = dense graph")
        true
        (Dfr_graph.Digraph.equal (Bwg.graph hybrid) (Bwg.graph dense));
      check Alcotest.bool
        (e.Registry.name ^ " hybrid = dense acyclicity")
        (Bwg.is_acyclic dense) (Bwg.is_acyclic hybrid))
    Registry.all

let test_witness_cap_respected () =
  let space = State_space.build cube3 Hypercube_wormhole.efa in
  let bwg = Bwg.build ~witness_cap:2 space in
  Dfr_graph.Digraph.iter_edges
    (fun q w ->
      check Alcotest.bool "cap" true (List.length (Bwg.witnesses bwg q w) <= 2))
    (Bwg.graph bwg)

let suite =
  suite
  @ [
      Alcotest.test_case "double-y verdict" `Quick test_double_y_verdict;
      Alcotest.test_case "hop-class Theorem 1" `Quick test_hop_class_verdict_theorem1;
      Alcotest.test_case "duato-torus verdict" `Quick test_duato_torus_verdict;
      Alcotest.test_case "every pair relaxation deadlocks (Thm 6)" `Quick
        test_every_pair_relaxation_deadlocks;
      Alcotest.test_case "pair relaxation cycle dimensions" `Quick
        test_pair_relaxation_cycle_uses_both_dimensions;
      Alcotest.test_case "VCT matches SAF" `Quick test_vct_matches_saf_verdicts;
      Alcotest.test_case "closure ablation is unsound" `Quick test_closure_ablation_unsound;
      Alcotest.test_case "closure no-op for SAF" `Quick test_closure_matches_for_saf;
      Alcotest.test_case "sparse state table = dense" `Quick
        test_sparse_state_table_matches_dense;
      Alcotest.test_case "hybrid closures = dense closures" `Quick
        test_hybrid_closures_match_dense;
      Alcotest.test_case "witness cap respected" `Quick test_witness_cap_respected;
    ]

(* ---------------- certificates ---------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_certificate_theorem1 () =
  let report = Checker.check cube3 Hypercube_wormhole.efa in
  let cert = Certificate.render cube3 Hypercube_wormhole.efa report in
  check Alcotest.bool "verdict line" true (contains cert "DEADLOCK-FREE  (Theorem 1)");
  check Alcotest.bool "order shown" true (contains cert " < ");
  check Alcotest.bool "names algorithm" true (contains cert "efa")

let test_certificate_theorem3 () =
  let report = Checker.check saf33 Mesh_saf.two_buffer in
  let cert = Certificate.render saf33 Mesh_saf.two_buffer report in
  check Alcotest.bool "Theorem 3" true (contains cert "(Theorem 3, reduced waiting graph)");
  check Alcotest.bool "mentions hint" true (contains cert "declarative hint")

let test_certificate_knot () =
  let report = Checker.check cube2 Hypercube_wormhole.efa_relaxed in
  let cert = Certificate.render cube2 Hypercube_wormhole.efa_relaxed report in
  check Alcotest.bool "deadlock" true (contains cert "VERDICT: DEADLOCK");
  check Alcotest.bool "paper notation" true (contains cert "B1+^0@(0,0)")

let test_certificate_true_cycle () =
  let net = Incoherent_example.network () in
  let report = Checker.check net Incoherent_example.algo in
  let cert = Certificate.render net Incoherent_example.algo report in
  check Alcotest.bool "True Cycle" true (contains cert "(Theorem 2, True Cycle)");
  check Alcotest.bool "witness packets" true (contains cert "waits for")

let suite =
  suite
  @ [
      Alcotest.test_case "certificate Theorem 1" `Quick test_certificate_theorem1;
      Alcotest.test_case "certificate Theorem 3" `Quick test_certificate_theorem3;
      Alcotest.test_case "certificate knot" `Quick test_certificate_knot;
      Alcotest.test_case "certificate True Cycle" `Quick test_certificate_true_cycle;
    ]

(* ---------------- liveness ---------------- *)

let test_liveness_minimal_algorithms () =
  List.iter
    (fun (e : Registry.entry) ->
      if e.Registry.family <> Registry.Custom_family then begin
        let net = Registry.network_for e None in
        let space = State_space.build net e.Registry.algo in
        check Alcotest.bool (e.Registry.name ^ " livelock-free") true
          (Liveness.livelock_free space);
        check Alcotest.bool (e.Registry.name ^ " minimal") true
          (Liveness.is_minimal space)
      end)
    Registry.all

let test_liveness_incoherent_example () =
  (* the qA1 <-> qB2 detour is a genuine livelock possibility *)
  let net = Incoherent_example.network () in
  let space = State_space.build net Incoherent_example.algo in
  let r = Liveness.analyze space in
  check Alcotest.bool "not livelock-free" false r.Liveness.livelock_free;
  check (Alcotest.option Alcotest.int) "toward n3" (Some Incoherent_example.n3)
    r.Liveness.offending_dest;
  (match r.Liveness.cycle with
  | Some cycle ->
    check Alcotest.bool "cycle passes through qB2" true
      (List.mem (Incoherent_example.q_b2 net) cycle)
  | None -> Alcotest.fail "cycle witness expected");
  check Alcotest.bool "not minimal either" false (Liveness.is_minimal space)

let suite =
  suite
  @ [
      Alcotest.test_case "liveness of catalogue algorithms" `Quick
        test_liveness_minimal_algorithms;
      Alcotest.test_case "liveness flags the incoherent example" `Quick
        test_liveness_incoherent_example;
    ]

(* ---------------- irregular networks: up*/down* ---------------- *)

let test_updown_small_graph () =
  (* a 5-node graph with a cycle: triangle 0-1-2 plus pendant path 2-3-4 *)
  let t =
    Updown.make ~num_nodes:5
      ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ]
      ~root:0
  in
  (match Checker.verdict t.Updown.net t.Updown.algo with
  | Checker.Deadlock_free _ -> ()
  | v ->
    Alcotest.failf "up*/down* should be free: %a" (Checker.pp_verdict t.Updown.net) v);
  let space = State_space.build t.Updown.net t.Updown.algo in
  check Alcotest.int "no dead ends" 0 (List.length (State_space.stuck_states space));
  check Alcotest.bool "livelock-free by construction" true
    (Liveness.livelock_free space)

let test_updown_levels () =
  let t =
    Updown.make ~num_nodes:5
      ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ]
      ~root:0
  in
  check Alcotest.bool "1 -> 0 is up" true (Updown.is_up t ~src:1 ~dst:0);
  check Alcotest.bool "0 -> 1 is down" false (Updown.is_up t ~src:0 ~dst:1);
  check Alcotest.bool "3 -> 2 is up" true (Updown.is_up t ~src:3 ~dst:2)

let test_updown_rejects_disconnected () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Updown.make: graph is not connected") (fun () ->
      ignore (Updown.make ~num_nodes:4 ~edges:[ (0, 1); (2, 3) ] ~root:0))

let test_updown_random_graphs () =
  (* the paper's universality claim on irregular topologies: every random
     connected graph yields a certified-deadlock-free relation *)
  List.iter
    (fun seed ->
      let t = Updown.random_connected ~seed ~num_nodes:7 ~extra_edges:4 in
      match Checker.verdict t.Updown.net t.Updown.algo with
      | Checker.Deadlock_free _ -> ()
      | v ->
        Alcotest.failf "seed %d: %a" seed (Checker.pp_verdict t.Updown.net) v)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_updown_never_deadlocks_dynamically () =
  let t = Updown.random_connected ~seed:42 ~num_nodes:8 ~extra_edges:5 in
  (* custom networks have no Topology, so build traffic by hand: an
     all-pairs batch *)
  let n = Net.num_nodes t.Updown.net in
  let traffic = ref [] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        traffic :=
          { Dfr_sim.Traffic.src; dst; length = 6; inject_at = 0;
            mode = Dfr_sim.Traffic.Adaptive }
          :: !traffic
    done
  done;
  match Dfr_sim.Wormhole_sim.run t.Updown.net t.Updown.algo !traffic with
  | Dfr_sim.Wormhole_sim.Completed s ->
    check Alcotest.int "all delivered" (List.length !traffic) s.Dfr_sim.Stats.delivered
  | o -> Alcotest.failf "up*/down* stalled: %a" Dfr_sim.Wormhole_sim.pp_outcome o

(* ---------------- odd-even turn model ---------------- *)

let test_odd_even_verdicts () =
  List.iter
    (fun radices ->
      let net = Net.wormhole (Topology.mesh radices) ~vcs:1 in
      match Checker.verdict net Mesh_wormhole.odd_even with
      | Checker.Deadlock_free _ -> ()
      | v ->
        Alcotest.failf "odd-even on %s: %a" (Net.name net) (Checker.pp_verdict net) v)
    [ [| 3; 3 |]; [| 4; 4 |]; [| 5; 4 |]; [| 4; 5 |] ]

let test_odd_even_turn_rules () =
  let net = Net.wormhole (Topology.mesh [| 5; 5 |]) ~vcs:1 in
  let topo = Net.topology_exn net in
  let node x y = Topology.node_of_coord topo [| x; y |] in
  let east_into x y = Net.channel net ~src:(node (x - 1) y) ~dim:0 ~dir:Topology.Plus ~vc:0 in
  (* traveling east into an even column, still needing north: EN forbidden *)
  let r = Mesh_wormhole.odd_even.Algo.route net (east_into 2 0) ~dest:(node 4 3) in
  check Alcotest.bool "no EN turn at even column" false
    (List.exists
       (fun id ->
         match Buf.kind (Net.buffer net id) with
         | Buf.Channel { dim = 1; _ } -> true
         | _ -> false)
       r);
  (* same situation one column further (odd): the turn is allowed *)
  let r2 = Mesh_wormhole.odd_even.Algo.route net (east_into 3 0) ~dest:(node 4 3) in
  check Alcotest.bool "EN turn allowed at odd column" true
    (List.exists
       (fun id ->
         match Buf.kind (Net.buffer net id) with
         | Buf.Channel { dim = 1; _ } -> true
         | _ -> false)
       r2);
  (* westbound: row corrections only in even columns *)
  let inj = Net.injection net (node 3 0) in
  let r3 = Mesh_wormhole.odd_even.Algo.route net inj ~dest:(node 0 2) in
  check Alcotest.bool "no row move at odd column when westbound" false
    (List.exists
       (fun id ->
         match Buf.kind (Net.buffer net id) with
         | Buf.Channel { dim = 1; _ } -> true
         | _ -> false)
       r3)

let test_odd_even_more_adaptive_than_turn_models_somewhere () =
  (* odd-even's selling point: restrictions are spread evenly; check it
     offers an adaptive choice where west-first is deterministic *)
  let net = Net.wormhole (Topology.mesh [| 5; 5 |]) ~vcs:1 in
  let topo = Net.topology_exn net in
  let node x y = Topology.node_of_coord topo [| x; y |] in
  let inj = Net.injection net (node 4 0) in
  (* westbound with a row correction pending at an even column *)
  let wf = Mesh_wormhole.west_first.Algo.route net inj ~dest:(node 2 2) in
  let oe =
    Mesh_wormhole.odd_even.Algo.route net
      (Net.injection net (node 4 0))
      ~dest:(node 2 2)
  in
  check Alcotest.int "west-first: west only" 1 (List.length wf);
  check Alcotest.int "odd-even: west or north" 2 (List.length oe)

let suite =
  suite
  @ [
      Alcotest.test_case "up*/down* small graph" `Quick test_updown_small_graph;
      Alcotest.test_case "up*/down* levels" `Quick test_updown_levels;
      Alcotest.test_case "up*/down* rejects disconnected" `Quick
        test_updown_rejects_disconnected;
      Alcotest.test_case "up*/down* random graphs certified" `Quick
        test_updown_random_graphs;
      Alcotest.test_case "up*/down* drains dynamically" `Quick
        test_updown_never_deadlocks_dynamically;
      Alcotest.test_case "odd-even verdicts" `Quick test_odd_even_verdicts;
      Alcotest.test_case "odd-even turn rules" `Quick test_odd_even_turn_rules;
      Alcotest.test_case "odd-even adaptivity spread" `Quick
        test_odd_even_more_adaptive_than_turn_models_somewhere;
    ]

(* ---------------- JSON reports ---------------- *)

let test_report_json_free () =
  let report = Checker.check cube3 Hypercube_wormhole.efa in
  let s = Report_json.to_string cube3 Hypercube_wormhole.efa report in
  check Alcotest.bool "result field" true (contains s "\"result\": \"deadlock-free\"");
  check Alcotest.bool "theorem field" true (contains s "\"theorem\": 1");
  check Alcotest.bool "algorithm name" true (contains s "\"efa\"")

let test_report_json_deadlock () =
  let report = Checker.check cube2 Hypercube_wormhole.efa_relaxed in
  let s = Report_json.to_string cube2 Hypercube_wormhole.efa_relaxed report in
  check Alcotest.bool "deadlock" true (contains s "\"result\": \"deadlock\"");
  check Alcotest.bool "knot kind" true (contains s "\"kind\": \"knot\"");
  check Alcotest.bool "paper-notation names" true (contains s "B1+^0@(0,0)")

let test_report_json_theorem3 () =
  let report = Checker.check saf33 Mesh_saf.two_buffer in
  let s = Report_json.to_string saf33 Mesh_saf.two_buffer report in
  check Alcotest.bool "theorem 3" true (contains s "\"theorem\": 3");
  check Alcotest.bool "hint flag" true (contains s "\"via_hint\": true")

(* ---------------- route-restriction monotonicity ---------------- *)

let test_restricting_nonwait_outputs_preserves_theorem1 () =
  (* dropping outputs a packet never waits on can only shrink the BWG, so
     Theorem 1 verdicts survive any such restriction (here: randomly drop
     B2 options from EFA, keeping the relation wait-connected) *)
  List.iter
    (fun seed ->
      let rng = Dfr_util.Prng.create seed in
      let table = Hashtbl.create 64 in
      let keep b dest o =
        let key = (b, dest, o) in
        match Hashtbl.find_opt table key with
        | Some v -> v
        | None ->
          let v = Dfr_util.Prng.bool rng in
          Hashtbl.replace table key v;
          v
      in
      let restricted =
        Algo.make
          ~name:(Printf.sprintf "efa-restricted-%d" seed)
          ~wait:Algo.Specific_wait
          ~route:(fun net b ~dest ->
            let waits = Hypercube_wormhole.efa.Algo.waits net b ~dest in
            List.filter
              (fun o ->
                List.mem o waits || keep (Buf.id b) dest o)
              (Hypercube_wormhole.efa.Algo.route net b ~dest))
          ~waits:(fun net b ~dest -> Hypercube_wormhole.efa.Algo.waits net b ~dest)
          ()
      in
      match Checker.verdict cube3 restricted with
      | Checker.Deadlock_free _ -> ()
      | v ->
        Alcotest.failf "restricted EFA (seed %d) must stay free: %a" seed
          (Checker.pp_verdict cube3) v)
    [ 1; 2; 3; 4; 5 ]

let suite =
  suite
  @ [
      Alcotest.test_case "json report (free)" `Quick test_report_json_free;
      Alcotest.test_case "json report (deadlock)" `Quick test_report_json_deadlock;
      Alcotest.test_case "json report (theorem 3)" `Quick test_report_json_theorem3;
      Alcotest.test_case "restriction preserves Theorem 1" `Quick
        test_restricting_nonwait_outputs_preserves_theorem1;
    ]

(* ---------------- planar-adaptive & turn extraction ---------------- *)

let test_planar_adaptive_verdicts () =
  List.iter
    (fun radices ->
      let net = Net.wormhole (Topology.mesh radices) ~vcs:3 in
      match Checker.verdict net Mesh_wormhole.planar_adaptive with
      | Checker.Deadlock_free Checker.Acyclic_bwg -> ()
      | v ->
        Alcotest.failf "planar-adaptive on %s: %a" (Net.name net)
          (Checker.pp_verdict net) v)
    [ [| 4; 4 |]; [| 3; 3; 3 |]; [| 2; 3; 4 |] ]

let test_planar_adaptive_plane_structure () =
  (* in-plane adaptivity uses only the two lowest consecutive needed
     dimensions; non-consecutive pairs route deterministically *)
  let net = Net.wormhole (Topology.mesh [| 3; 3; 3 |]) ~vcs:3 in
  let topo = Net.topology_exn net in
  let node a b c = Topology.node_of_coord topo [| a; b; c |] in
  let inj = Net.injection net (node 0 0 0) in
  (* needs dims 0 and 1: two offers (x and y of plane A0) *)
  let r = Mesh_wormhole.planar_adaptive.Algo.route net inj ~dest:(node 1 1 0) in
  check Alcotest.int "plane A0 adaptive" 2 (List.length r);
  (* needs dims 0 and 2 only: deterministic x of A0 *)
  let r2 = Mesh_wormhole.planar_adaptive.Algo.route net inj ~dest:(node 1 0 1) in
  check Alcotest.int "non-consecutive: x only" 1 (List.length r2);
  (* needs all three: still only plane A0's two offers *)
  let r3 = Mesh_wormhole.planar_adaptive.Algo.route net inj ~dest:(node 1 1 1) in
  check Alcotest.int "three dims: plane A0 only" 2 (List.length r3)

let test_turns_count () =
  check Alcotest.int "2-D has 8 turns" 8 (List.length (Turns.all_turns ~dims:2));
  check Alcotest.int "3-D has 24 turns" 24 (List.length (Turns.all_turns ~dims:3))

let turn d1 r1 d2 r2 =
  { Turns.from_dim = d1; from_dir = r1; to_dim = d2; to_dir = r2 }

let test_turns_west_first () =
  let space = State_space.build mesh33_1 Mesh_wormhole.west_first in
  (* the two forbidden turn senses: into west from north/south *)
  check Alcotest.bool "N->W forbidden" false
    (Turns.permitted space (turn 1 Topology.Plus 0 Topology.Minus));
  check Alcotest.bool "S->W forbidden" false
    (Turns.permitted space (turn 1 Topology.Minus 0 Topology.Minus));
  (* all six remaining turns are taken somewhere *)
  let forbidden =
    List.filter (fun (_, p) -> not p) (Turns.turn_set space) |> List.length
  in
  check Alcotest.int "exactly two turns forbidden" 2 forbidden

let test_turns_north_last () =
  let space = State_space.build mesh33_1 Mesh_wormhole.north_last in
  (* out of north is forbidden *)
  check Alcotest.bool "N->E forbidden" false
    (Turns.permitted space (turn 1 Topology.Plus 0 Topology.Plus));
  check Alcotest.bool "N->W forbidden" false
    (Turns.permitted space (turn 1 Topology.Plus 0 Topology.Minus));
  let forbidden =
    List.filter (fun (_, p) -> not p) (Turns.turn_set space) |> List.length
  in
  check Alcotest.int "exactly two turns forbidden" 2 forbidden

let test_turns_negative_first () =
  let space = State_space.build mesh33_1 Mesh_wormhole.negative_first in
  (* from a positive direction into a negative one is forbidden *)
  check Alcotest.bool "E->S forbidden" false
    (Turns.permitted space (turn 0 Topology.Plus 1 Topology.Minus));
  check Alcotest.bool "N->W forbidden" false
    (Turns.permitted space (turn 1 Topology.Plus 0 Topology.Minus));
  check Alcotest.bool "W->N allowed" true
    (Turns.permitted space (turn 0 Topology.Minus 1 Topology.Plus))

let test_turns_odd_even_position_dependent () =
  let net = Net.wormhole (Topology.mesh [| 5; 5 |]) ~vcs:1 in
  let space = State_space.build net Mesh_wormhole.odd_even in
  let topo = Net.topology_exn net in
  let node x y = Topology.node_of_coord topo [| x; y |] in
  let en = turn 0 Topology.Plus 1 Topology.Plus in
  (* EN allowed at odd columns, forbidden at even ones *)
  check Alcotest.bool "EN at column 3" true
    (Turns.permitted_at space ~node:(node 3 1) en);
  check Alcotest.bool "no EN at column 2" false
    (Turns.permitted_at space ~node:(node 2 1) en);
  (* globally both senses appear: no turn is forbidden everywhere *)
  let forbidden =
    List.filter (fun (_, p) -> not p) (Turns.turn_set space) |> List.length
  in
  check Alcotest.int "no globally forbidden turn" 0 forbidden

let test_turns_dimension_order () =
  let space = State_space.build mesh33_1 Mesh_wormhole.dimension_order in
  (* only turns from dim 0 into dim 1 exist *)
  List.iter
    (fun (t, p) ->
      let expected = t.Turns.from_dim = 0 && t.Turns.to_dim = 1 in
      check Alcotest.bool "XY turn pattern" expected p)
    (Turns.turn_set space)

let suite =
  suite
  @ [
      Alcotest.test_case "planar-adaptive verdicts" `Quick test_planar_adaptive_verdicts;
      Alcotest.test_case "planar-adaptive plane structure" `Quick
        test_planar_adaptive_plane_structure;
      Alcotest.test_case "turn inventory sizes" `Quick test_turns_count;
      Alcotest.test_case "turns: west-first" `Quick test_turns_west_first;
      Alcotest.test_case "turns: north-last" `Quick test_turns_north_last;
      Alcotest.test_case "turns: negative-first" `Quick test_turns_negative_first;
      Alcotest.test_case "turns: odd-even by column" `Quick
        test_turns_odd_even_position_dependent;
      Alcotest.test_case "turns: dimension order" `Quick test_turns_dimension_order;
    ]

(* ---------------- multicore BWG construction ---------------- *)

let test_parallel_bwg_identical () =
  (* fanning the per-destination closures over domains must reproduce the
     serial graph and witness table exactly *)
  List.iter
    (fun (net, algo) ->
      let space = State_space.build net algo in
      let serial = Bwg.build space in
      let parallel = Bwg.build ~domains:4 space in
      check Alcotest.bool "same graph" true
        (Dfr_graph.Digraph.equal (Bwg.graph serial) (Bwg.graph parallel));
      Dfr_graph.Digraph.iter_edges
        (fun q w ->
          if Bwg.witnesses serial q w <> Bwg.witnesses parallel q w then
            Alcotest.failf "witness mismatch on %s -> %s"
              (Net.describe_buffer net q) (Net.describe_buffer net w))
        (Bwg.graph serial))
    [
      (cube3, Hypercube_wormhole.efa);
      (cube2, Hypercube_wormhole.efa_relaxed);
      (saf33, Mesh_saf.two_buffer);
      (Incoherent_example.network (), Incoherent_example.algo);
    ]

let test_parallel_bwg_verdict_path () =
  (* a full verdict computed from a parallel-built BWG agrees *)
  let space = State_space.build cube3 Hypercube_wormhole.efa in
  let bwg = Bwg.build ~domains:3 space in
  check Alcotest.bool "acyclic" true (Bwg.is_acyclic bwg);
  check Alcotest.bool "wait connected" true (Bwg.is_wait_connected bwg)

let suite =
  suite
  @ [
      Alcotest.test_case "parallel BWG identical to serial" `Quick
        test_parallel_bwg_identical;
      Alcotest.test_case "parallel BWG verdict path" `Quick test_parallel_bwg_verdict_path;
    ]

let test_updown_fat_tree () =
  let t = Updown.fat_tree ~levels:3 ~down_degree:2 in
  check Alcotest.int "7 nodes" 7 (Net.num_nodes t.Updown.net);
  (match Checker.verdict t.Updown.net t.Updown.algo with
  | Checker.Deadlock_free _ -> ()
  | v -> Alcotest.failf "fat tree: %a" (Checker.pp_verdict t.Updown.net) v);
  let t3 = Updown.fat_tree ~levels:3 ~down_degree:3 in
  check Alcotest.int "13 nodes" 13 (Net.num_nodes t3.Updown.net);
  match Checker.verdict t3.Updown.net t3.Updown.algo with
  | Checker.Deadlock_free _ -> ()
  | v -> Alcotest.failf "ternary fat tree: %a" (Checker.pp_verdict t3.Updown.net) v

let suite =
  suite
  @ [ Alcotest.test_case "up*/down* fat tree" `Quick test_updown_fat_tree ]

(* ---------------- scaled audit (slow) ---------------- *)

let test_scaled_audit () =
  (* the catalogue's verdicts are size-stable: re-check every entry on a
     larger topology than its default *)
  let bigger (e : Registry.entry) =
    match e.Registry.family with
    | Registry.Hypercube_family -> Some (Topology.hypercube 4)
    | Registry.Mesh_family _ | Registry.Mesh_saf_family _ | Registry.Vct_family _
      -> Some (Topology.mesh [| 5; 5 |])
    | Registry.Torus_family _ -> Some (Topology.torus [| 5; 5 |])
    | Registry.Fullmesh_family -> Some (Topology.fullmesh 7)
    | Registry.Dragonfly_family -> Some (Topology.dragonfly ~a:2 ~h:2 ())
    | Registry.Fattree_family -> Some (Topology.kary_ntree ~k:2 ~n:3)
    | Registry.Custom_family -> None
  in
  List.iter
    (fun (e : Registry.entry) ->
      match (e.Registry.expected_deadlock_free, bigger e) with
      | Some expected, Some topo ->
        (* hop-class needs diameter+1 classes: skip sizes it cannot fit *)
        let fits =
          match e.Registry.family with
          | Registry.Mesh_saf_family { classes } ->
            e.Registry.name <> "hop-class" || classes > Mesh_saf.diameter topo
          | _ -> true
        in
        if fits then
          let net = Registry.network_for e (Some topo) in
          check
            (Alcotest.option Alcotest.bool)
            (e.Registry.name ^ " scaled verdict")
            (Some expected)
            (deadlock_free (Checker.verdict net e.Registry.algo))
      | _ -> ())
    Registry.all

let suite =
  suite @ [ Alcotest.test_case "scaled audit" `Slow test_scaled_audit ]

(* ---------------- report JSON round-trip ---------------- *)

let test_report_json_roundtrip () =
  let run net algo expect_result =
    let report = Checker.check net algo in
    let s = Report_json.to_string net algo report in
    match Report_json.of_string s with
    | Error e -> Alcotest.fail e
    | Ok summary ->
      check Alcotest.string "algorithm" algo.Algo.name summary.Report_json.algorithm;
      check Alcotest.string "network" (Net.name net) summary.Report_json.network;
      check Alcotest.bool "waiting" true
        (summary.Report_json.waiting = algo.Algo.wait);
      check Alcotest.int "nodes" (Net.num_nodes net) summary.Report_json.nodes;
      check Alcotest.int "buffers" (Net.num_buffers net) summary.Report_json.buffers;
      check Alcotest.string "result" expect_result summary.Report_json.result;
      summary
  in
  (* a deadlock-free proof: Theorem recorded, no failure kind *)
  let free = run cube3 Hypercube_wormhole.ecube "deadlock-free" in
  check Alcotest.bool "theorem present" true (free.Report_json.theorem <> None);
  check (Alcotest.option Alcotest.string) "no failure kind" None
    free.Report_json.failure_kind;
  (* a deadlock verdict: failure kind and cycle inventory survive *)
  let net = Incoherent_example.network () in
  let bad = run net Incoherent_example.algo "deadlock" in
  check (Alcotest.option Alcotest.string) "failure kind" (Some "true-cycle")
    bad.Report_json.failure_kind;
  check Alcotest.bool "cycle nonempty" true (bad.Report_json.cycle <> [])

let test_report_json_rejects_garbage () =
  let fails s =
    match Report_json.of_string s with Ok _ -> false | Error _ -> true
  in
  check Alcotest.bool "not json" true (fails "not json");
  check Alcotest.bool "missing fields" true (fails "{\"algorithm\":\"x\"}");
  check Alcotest.bool "bad waiting" true
    (fails
       "{\"algorithm\":\"x\",\"waiting\":\"sometimes\",\"network\":\"n\",\
        \"nodes\":1,\"buffers\":2,\"bwg\":{\"vertices\":1,\"edges\":0},\
        \"verdict\":{\"result\":\"unknown\"}}")

let suite =
  suite
  @ [
      Alcotest.test_case "report json round-trip" `Quick test_report_json_roundtrip;
      Alcotest.test_case "report json rejects garbage" `Quick
        test_report_json_rejects_garbage;
    ]
