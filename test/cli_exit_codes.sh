#!/usr/bin/env bash
# Exit-code contract of dfcheck (see the table in bin/dfcheck.ml):
#   0  deadlock-free / success
#   1  deadlock found
#   2  usage or spec error
#   3  verdict unknown
# Run by a dune rule with the dfcheck binary as $1; spec fixtures are
# resolved relative to this script's sandbox copy of the workspace.
set -u
dfcheck=$1
specs=../examples/specs
fail=0

expect() {
  want=$1
  shift
  "$dfcheck" "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: dfcheck $* -> exit $got, want $want"
    fail=1
  else
    echo "ok: dfcheck $* -> $got"
  fi
}

# deadlock-free algorithms -> 0
expect 0 check -a efa
expect 0 check -t hypercube:3 -a ecube
expect 0 spec check "$specs/updown.dfr"

# deadlock witnesses (knot or True Cycle) -> 1
expect 1 check -a efa-relaxed
expect 1 check -a duato-incoherent
expect 1 spec check "$specs/incoherent.dfr"

# usage and spec errors -> 2
expect 2 check -a no-such-algorithm
expect 2 check
expect 2 no-such-subcommand
expect 2 check -a efa --no-such-flag
expect 2 spec check /dev/null

# hotspot nodes are range-checked before injection: a negative or
# too-large node is a usage error, never a wild array index
expect 2 simulate -a ecube -t hypercube:2 -p hotspot:-3 --horizon 50
expect 2 simulate -a ecube -t hypercube:2 -p hotspot:99 --horizon 50
expect 0 simulate -a ecube -t hypercube:2 -p hotspot:0 --horizon 50

# differential fuzzing: a clean head disagrees with itself nowhere -> 0
expect 0 fuzz --trials 10 --seed 7 --max-nodes 6

# the serve/client surface
expect 0 list --json
expect 2 serve --workers 0
expect 2 serve --cache=-1
expect 2 client ping                 # --port is required
expect 2 client check --port 1      # needs --spec or -a before connecting
expect 2 client ping --port 1       # nothing listens on port 1

# a serve session is a success (exit 0) even when individual requests
# fail: errors travel in-band as response objects, never as exit codes
expect_stdin() {
  want=$1
  input=$2
  shift 2
  printf '%s' "$input" | "$dfcheck" "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: ... | dfcheck $* -> exit $got, want $want"
    fail=1
  else
    echo "ok: ... | dfcheck $* -> $got"
  fi
}

# synthesis: 0 = synthesized (or certified maximal), 1 = honest Unsat
# (Theorem 3: no BWG' exists), 2 = usage, 3 = gave up
expect 0 synth --mode bwg -a two-buffer
expect 0 synth --mode bwg --minimize -a two-buffer
expect 0 synth --mode optimal -a two-buffer
expect 0 synth --mode repair -a dragonfly-minimal-1vc
expect 0 spec dot --bwg-prime "$specs/updown.dfr"
# random fuzz designs usually deadlock; seed 7 deterministically yields an
# Unsat in the batch, so the run reports 1 — the honest refutation path
expect 1 synth --mode bwg --random 2 --seed 7 --max-nodes 6
expect 1 synth --mode bwg -a single-buffer
expect 1 synth --mode bwg -a efa-relaxed
expect 2 synth --mode bogus -a efa
expect 2 synth --mode bwg                      # no input selected
expect 2 synth --mode bwg -a no-such-algorithm

# synthesized output is deterministic: bit-identical across --domains
synth_det() {
  mode=$1
  algo=$2
  a=$("$dfcheck" synth --mode "$mode" -a "$algo" --domains 1 2>/dev/null)
  b=$("$dfcheck" synth --mode "$mode" -a "$algo" --domains 4 2>/dev/null)
  if [ "$a" = "$b" ] && [ -n "$a" ]; then
    echo "ok: synth --mode $mode -a $algo identical across --domains"
  else
    echo "FAIL: synth --mode $mode -a $algo differs across --domains"
    fail=1
  fi
}
synth_det bwg two-buffer
synth_det repair dragonfly-minimal-1vc

expect_stdin 0 '{"op":"ping"}
garbage
{"op":"check","algo":"no-such-algorithm"}
{"op":"shutdown"}
' serve
expect_stdin 0 '' serve              # immediate EOF drains cleanly

exit $fail
