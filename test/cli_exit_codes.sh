#!/usr/bin/env bash
# Exit-code contract of dfcheck (see the table in bin/dfcheck.ml):
#   0  deadlock-free / success
#   1  deadlock found
#   2  usage or spec error
#   3  verdict unknown
# Run by a dune rule with the dfcheck binary as $1; spec fixtures are
# resolved relative to this script's sandbox copy of the workspace.
set -u
dfcheck=$1
specs=../examples/specs
fail=0

expect() {
  want=$1
  shift
  "$dfcheck" "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: dfcheck $* -> exit $got, want $want"
    fail=1
  else
    echo "ok: dfcheck $* -> $got"
  fi
}

# deadlock-free algorithms -> 0
expect 0 check -a efa
expect 0 check -t hypercube:3 -a ecube
expect 0 spec check "$specs/updown.dfr"

# deadlock witnesses (knot or True Cycle) -> 1
expect 1 check -a efa-relaxed
expect 1 check -a duato-incoherent
expect 1 spec check "$specs/incoherent.dfr"

# usage and spec errors -> 2
expect 2 check -a no-such-algorithm
expect 2 check
expect 2 no-such-subcommand
expect 2 check -a efa --no-such-flag
expect 2 spec check /dev/null

# hotspot nodes are range-checked before injection: a negative or
# too-large node is a usage error, never a wild array index
expect 2 simulate -a ecube -t hypercube:2 -p hotspot:-3 --horizon 50
expect 2 simulate -a ecube -t hypercube:2 -p hotspot:99 --horizon 50
expect 0 simulate -a ecube -t hypercube:2 -p hotspot:0 --horizon 50

# differential fuzzing: a clean head disagrees with itself nowhere -> 0
expect 0 fuzz --trials 10 --seed 7 --max-nodes 6

# the serve/client surface
expect 0 list --json
expect 2 serve --workers 0
expect 2 serve --cache=-1
expect 2 client ping                 # --port is required
expect 2 client check --port 1      # needs --spec or -a before connecting
expect 2 client ping --port 1       # nothing listens on port 1

# a serve session is a success (exit 0) even when individual requests
# fail: errors travel in-band as response objects, never as exit codes
expect_stdin() {
  want=$1
  input=$2
  shift 2
  printf '%s' "$input" | "$dfcheck" "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: ... | dfcheck $* -> exit $got, want $want"
    fail=1
  else
    echo "ok: ... | dfcheck $* -> $got"
  fi
}

# synthesis: 0 = synthesized (or certified maximal), 1 = honest Unsat
# (Theorem 3: no BWG' exists), 2 = usage, 3 = gave up
expect 0 synth --mode bwg -a two-buffer
expect 0 synth --mode bwg --minimize -a two-buffer
expect 0 synth --mode optimal -a two-buffer
expect 0 synth --mode repair -a dragonfly-minimal-1vc
expect 0 spec dot --bwg-prime "$specs/updown.dfr"
# random fuzz designs usually deadlock; seed 7 deterministically yields an
# Unsat in the batch, so the run reports 1 — the honest refutation path
expect 1 synth --mode bwg --random 2 --seed 7 --max-nodes 6
expect 1 synth --mode bwg -a single-buffer
expect 1 synth --mode bwg -a efa-relaxed
expect 2 synth --mode bogus -a efa
expect 2 synth --mode bwg                      # no input selected
expect 2 synth --mode bwg -a no-such-algorithm

# synthesized output is deterministic: bit-identical across --domains
synth_det() {
  mode=$1
  algo=$2
  a=$("$dfcheck" synth --mode "$mode" -a "$algo" --domains 1 2>/dev/null)
  b=$("$dfcheck" synth --mode "$mode" -a "$algo" --domains 4 2>/dev/null)
  if [ "$a" = "$b" ] && [ -n "$a" ]; then
    echo "ok: synth --mode $mode -a $algo identical across --domains"
  else
    echo "FAIL: synth --mode $mode -a $algo differs across --domains"
    fail=1
  fi
}
synth_det bwg two-buffer
synth_det repair dragonfly-minimal-1vc

expect_stdin 0 '{"op":"ping"}
garbage
{"op":"check","algo":"no-such-algorithm"}
{"op":"shutdown"}
' serve
expect_stdin 0 '' serve              # immediate EOF drains cleanly

# scenario campaigns: 0 = every fault survived, 1 = a fault deadlocks,
# 2 = unusable plan/instance/workload
plans=../examples/plans
expect 1 scenario sweep -a dimension-order -t mesh:3x3 --plan "$plans/mesh_link_cut.plan"
expect 1 scenario run -a dimension-order -t mesh:3x3 --plan "$plans/node_failure.plan"
expect 2 scenario run -a dimension-order --plan /no/such/file.plan
expect 2 scenario run -a no-such-algorithm --plan "$plans/mesh_link_cut.plan"
expect 2 scenario run --plan "$plans/mesh_link_cut.plan"   # no instance
# a free sweep: duato-torus tolerates losing one adaptive channel
noop=$(mktemp)
printf 'plan "free"\nseed 1\n' > "$noop"
expect 0 scenario sweep -a duato-mesh -t mesh:3x3 --plan "$noop"
# adversarial generators validate up front: an unusable workload is a
# usage error (exit 2), never a simulator spin or a wild index
expect 2 scenario run -a duato-mesh -t mesh:3x3 --plan "$noop" --traffic storm:99
expect 2 scenario run -a duato-mesh -t mesh:3x3 --plan "$noop" --traffic bursty:4 --length 0
expect 2 scenario run -a duato-mesh -t mesh:3x3 --plan "$noop" --traffic bursty:0
expect 2 scenario run -a duato-mesh -t mesh:3x3 --plan "$noop" --traffic seeking  # free verdict: nothing to seek
expect 0 scenario run -a duato-mesh -t mesh:3x3 --plan "$noop" --traffic bursty:4 --rate 0.02 --latency
rm -f "$noop"

# campaign reports are deterministic: bit-identical across --domains and
# across the incremental/cold checking paths
scenario_det() {
  a=$("$dfcheck" scenario sweep -a dimension-order -t mesh:3x3 --plan "$plans/mesh_link_cut.plan" --json --domains 1 2>/dev/null)
  b=$("$dfcheck" scenario sweep -a dimension-order -t mesh:3x3 --plan "$plans/mesh_link_cut.plan" --json --domains 4 2>/dev/null)
  c=$("$dfcheck" scenario sweep -a dimension-order -t mesh:3x3 --plan "$plans/mesh_link_cut.plan" --json --cold 2>/dev/null)
  if [ "$a" = "$b" ] && [ "$a" = "$c" ] && [ -n "$a" ]; then
    echo "ok: scenario sweep identical across --domains and --cold"
  else
    echo "FAIL: scenario sweep differs across --domains or --cold"
    fail=1
  fi
}
scenario_det

exit $fail
