(* Aggregate test runner: `dune runtest`. *)

let () =
  Alcotest.run "dfr"
    [
      ("util", Test_util.suite);
      ("graph", Test_graph.suite);
      ("topology", Test_topology.suite);
      ("network", Test_network.suite);
      ("routing", Test_routing.suite);
      ("core", Test_core.suite);
      ("determinism", Test_determinism.suite);
      ("incoherent-example", Test_incoherent.suite);
      ("spec", Test_spec.suite);
      ("adaptiveness", Test_adaptiveness.suite);
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("fuzz", Test_fuzz.suite);
      ("differential", Test_differential.suite);
      ("serve", Test_serve.suite);
      ("incr", Test_incr.suite);
      ("synth", Test_synth.suite);
      ("scenario", Test_scenario.suite);
    ]
