(* Tests for dfr_topology: meshes, hypercubes, tori. *)

open Dfr_topology

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

(* ---------------- construction ---------------- *)

let test_sizes () =
  check Alcotest.int "mesh 3x4" 12 (Topology.num_nodes (Topology.mesh [| 3; 4 |]));
  check Alcotest.int "hypercube 5" 32 (Topology.num_nodes (Topology.hypercube 5));
  check Alcotest.int "torus 3x5" 15 (Topology.num_nodes (Topology.torus [| 3; 5 |]));
  check Alcotest.int "ring 7" 7 (Topology.num_nodes (Topology.ring 7));
  check Alcotest.int "hypercube dims" 4 (Topology.dimensions (Topology.hypercube 4));
  check Alcotest.int "mesh radix" 4 (Topology.radix (Topology.mesh [| 3; 4 |]) 1)

let test_bad_construction () =
  Alcotest.check_raises "empty" (Invalid_argument "Topology: no dimensions") (fun () ->
      ignore (Topology.mesh [||]));
  Alcotest.check_raises "torus radix 2"
    (Invalid_argument "Topology: torus radix must be >= 3") (fun () ->
      ignore (Topology.torus [| 2; 4 |]))

let test_coord_roundtrip () =
  let t = Topology.mesh [| 3; 4; 2 |] in
  for node = 0 to Topology.num_nodes t - 1 do
    check Alcotest.int "roundtrip" node
      (Topology.node_of_coord t (Topology.coord_of_node t node))
  done

let test_coordinate_accessor () =
  let t = Topology.mesh [| 3; 4 |] in
  let node = Topology.node_of_coord t [| 2; 3 |] in
  check Alcotest.int "dim 0" 2 (Topology.coordinate t node 0);
  check Alcotest.int "dim 1" 3 (Topology.coordinate t node 1)

(* ---------------- neighbours ---------------- *)

let test_mesh_boundaries () =
  let t = Topology.mesh [| 3; 3 |] in
  let corner = Topology.node_of_coord t [| 0; 0 |] in
  check Alcotest.bool "no 0-" true (Topology.neighbor t corner 0 Topology.Minus = None);
  check Alcotest.bool "no 1-" true (Topology.neighbor t corner 1 Topology.Minus = None);
  check Alcotest.int "corner degree" 2 (List.length (Topology.neighbors t corner));
  let center = Topology.node_of_coord t [| 1; 1 |] in
  check Alcotest.int "center degree" 4 (List.length (Topology.neighbors t center))

let test_torus_wrap () =
  let t = Topology.ring 5 in
  check (Alcotest.option Alcotest.int) "wrap plus" (Some 0)
    (Topology.neighbor t 4 0 Topology.Plus);
  check (Alcotest.option Alcotest.int) "wrap minus" (Some 4)
    (Topology.neighbor t 0 0 Topology.Minus)

let test_hypercube_neighbors () =
  let t = Topology.hypercube 4 in
  for node = 0 to 15 do
    let ns = Topology.neighbors t node in
    check Alcotest.int "degree n" 4 (List.length ns);
    List.iter
      (fun (_, _, v) -> check Alcotest.int "xor popcount 1" 1 (popcount (node lxor v)))
      ns
  done

let prop_neighbor_symmetric =
  QCheck.Test.make ~name:"neighbour relation symmetric" ~count:100
    QCheck.(int_range 0 8)
    (fun node ->
      let t = Topology.mesh [| 3; 3 |] in
      List.for_all
        (fun (_, _, v) ->
          List.exists (fun (_, _, u) -> u = node) (Topology.neighbors t v))
        (Topology.neighbors t node))

(* ---------------- distance & minimal moves ---------------- *)

let test_mesh_distance () =
  let t = Topology.mesh [| 4; 4 |] in
  let a = Topology.node_of_coord t [| 0; 0 |] in
  let b = Topology.node_of_coord t [| 3; 2 |] in
  check Alcotest.int "manhattan" 5 (Topology.distance t a b)

let test_torus_distance_wraps () =
  let t = Topology.ring 6 in
  check Alcotest.int "short way" 2 (Topology.distance t 0 4);
  check Alcotest.int "zero" 0 (Topology.distance t 3 3)

let test_minimal_moves_mesh () =
  let t = Topology.mesh [| 4; 4 |] in
  let src = Topology.node_of_coord t [| 1; 3 |] in
  let dst = Topology.node_of_coord t [| 3; 0 |] in
  let moves = Topology.minimal_moves t ~src ~dst in
  check Alcotest.int "two dims" 2 (List.length moves);
  check Alcotest.bool "0 plus" true (List.mem (0, Topology.Plus) moves);
  check Alcotest.bool "1 minus" true (List.mem (1, Topology.Minus) moves)

let test_minimal_moves_torus_tie () =
  let t = Topology.ring 6 in
  (* distance 3 both ways: both directions minimal *)
  let moves = Topology.minimal_moves t ~src:0 ~dst:3 in
  check Alcotest.int "both directions" 2 (List.length moves);
  (* distance 2 the short way only *)
  let moves = Topology.minimal_moves t ~src:0 ~dst:4 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool))
    "minus only"
    [ (0, false) ]
    (List.map (fun (d, dir) -> (d, dir = Topology.Plus)) moves)

let any_topology =
  QCheck.make
    QCheck.Gen.(
      oneof
        [
          return (Topology.mesh [| 3; 3 |]);
          return (Topology.mesh [| 4; 2 |]);
          return (Topology.hypercube 3);
          return (Topology.torus [| 4; 3 |]);
          return (Topology.ring 5);
        ])
    ~print:Topology.name

let prop_minimal_moves_decrease_distance =
  QCheck.Test.make ~name:"every minimal move decreases distance by 1" ~count:200
    QCheck.(pair any_topology (pair small_nat small_nat))
    (fun (t, (a, b)) ->
      let n = Topology.num_nodes t in
      let src = a mod n and dst = b mod n in
      src = dst
      || List.for_all
           (fun (dim, dir) ->
             match Topology.neighbor t src dim dir with
             | None -> false
             | Some v -> Topology.distance t v dst = Topology.distance t src dst - 1)
           (Topology.minimal_moves t ~src ~dst))

let prop_distance_matches_bfs =
  QCheck.Test.make ~name:"distance agrees with BFS over channels" ~count:60
    QCheck.(pair any_topology small_nat)
    (fun (t, a) ->
      let n = Topology.num_nodes t in
      let src = a mod n in
      let g = Topology.to_digraph t in
      let d = Dfr_graph.Traversal.bfs_distances g src in
      let ok = ref true in
      for v = 0 to n - 1 do
        if d.(v) <> Topology.distance t src v then ok := false
      done;
      !ok)

let prop_minimal_moves_nonempty =
  QCheck.Test.make ~name:"distinct nodes always have a minimal move" ~count:200
    QCheck.(pair any_topology (pair small_nat small_nat))
    (fun (t, (a, b)) ->
      let n = Topology.num_nodes t in
      let src = a mod n and dst = b mod n in
      src = dst || Topology.minimal_moves t ~src ~dst <> [])

(* ---------------- channels ---------------- *)

let test_channel_counts () =
  (* mesh AxB: directed channels = 2*((A-1)*B + A*(B-1)) *)
  let t = Topology.mesh [| 3; 4 |] in
  check Alcotest.int "mesh channels" (2 * ((2 * 4) + (3 * 3)))
    (List.length (Topology.channels t));
  let h = Topology.hypercube 3 in
  check Alcotest.int "hypercube channels" 24 (List.length (Topology.channels h));
  let r = Topology.ring 5 in
  check Alcotest.int "ring channels" 10 (List.length (Topology.channels r))

let test_is_torus () =
  check Alcotest.bool "mesh" false (Topology.is_torus (Topology.mesh [| 3; 3 |]));
  check Alcotest.bool "torus" true (Topology.is_torus (Topology.torus [| 3; 3 |]));
  check Alcotest.bool "hypercube" false (Topology.is_torus (Topology.hypercube 2))

let test_pp_node () =
  let t = Topology.mesh [| 3; 4 |] in
  let s = Format.asprintf "%a" (Topology.pp_node t) (Topology.node_of_coord t [| 2; 1 |]) in
  check Alcotest.string "coords" "(2,1)" s

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "bad construction" `Quick test_bad_construction;
    Alcotest.test_case "coordinate roundtrip" `Quick test_coord_roundtrip;
    Alcotest.test_case "coordinate accessor" `Quick test_coordinate_accessor;
    Alcotest.test_case "mesh boundaries" `Quick test_mesh_boundaries;
    Alcotest.test_case "torus wrap" `Quick test_torus_wrap;
    Alcotest.test_case "hypercube neighbours" `Quick test_hypercube_neighbors;
    Alcotest.test_case "mesh distance" `Quick test_mesh_distance;
    Alcotest.test_case "torus distance wraps" `Quick test_torus_distance_wraps;
    Alcotest.test_case "minimal moves mesh" `Quick test_minimal_moves_mesh;
    Alcotest.test_case "minimal moves torus tie" `Quick test_minimal_moves_torus_tie;
    Alcotest.test_case "channel counts" `Quick test_channel_counts;
    Alcotest.test_case "is_torus" `Quick test_is_torus;
    Alcotest.test_case "pp node" `Quick test_pp_node;
    qtest prop_neighbor_symmetric;
    qtest prop_minimal_moves_decrease_distance;
    qtest prop_distance_matches_bfs;
    qtest prop_minimal_moves_nonempty;
  ]

(* ---------------- textual topology grammar ---------------- *)

let test_of_string_ok () =
  let ok s = match Topology.of_string s with
    | Ok t -> t
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  check Alcotest.int "mesh:3x4" 12 (Topology.num_nodes (ok "mesh:3x4"));
  check Alcotest.int "torus:3x3" 9 (Topology.num_nodes (ok "torus:3x3"));
  check Alcotest.int "hypercube:3" 8 (Topology.num_nodes (ok "hypercube:3"));
  check Alcotest.int "ring:5" 5 (Topology.num_nodes (ok "ring:5"));
  check Alcotest.int "fullmesh:6" 6 (Topology.num_nodes (ok "fullmesh:6"));
  (* a*h+1 = 3 groups of 2 routers *)
  check Alcotest.int "dragonfly:2x1" 6 (Topology.num_nodes (ok "dragonfly:2x1"));
  check Alcotest.int "dragonfly:2x1x3" 6 (Topology.num_nodes (ok "dragonfly:2x1x3"));
  (* k^n hosts + n levels of k^(n-1) switches *)
  check Alcotest.int "kntree:2x2" 8 (Topology.num_nodes (ok "kntree:2x2"));
  check Alcotest.int "fattree:2x3" 20 (Topology.num_nodes (ok "fattree:2x3"))

let test_of_string_errors () =
  let err s = match Topology.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected an error" s
    | Error e -> e
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let expect s needle =
    let e = err s in
    if not (contains e needle) then
      Alcotest.failf "%s: error %S does not mention %S" s e needle
  in
  (* the offending token and the valid range must both be named *)
  expect "mesh:0x4" "radix 0";
  expect "mesh:0x4" ">= 1";
  expect "hypercube:99" "99";
  expect "hypercube:99" "1..10";
  expect "ring:2" ">= 3";
  expect "torus:2x2" ">= 3";
  expect "mesh:3xbanana" "banana";
  expect "blorp:3" "blorp";
  expect "mesh:" "mesh";
  expect "fullmesh:1" ">= 2";
  (* the fully-subscribed constraint names the one valid group count *)
  expect "dragonfly:2x1x4" "a*h + 1";
  expect "dragonfly:2" "2 or 3";
  expect "kntree:2x7" "1..6";
  (match Topology.of_string "kntree:1x2" with
  | Ok _ -> Alcotest.fail "kntree:1x2: expected an error"
  | Error _ -> ())

(* ---------------- irregular topologies ---------------- *)

let test_fullmesh_structure () =
  let t = Topology.fullmesh 5 in
  check Alcotest.int "nodes" 5 (Topology.num_nodes t);
  check (Alcotest.option Alcotest.int) "params" (Some 5) (Topology.fullmesh_params t);
  check Alcotest.bool "not a grid" false (Topology.is_grid t);
  check Alcotest.int "channels" (5 * 4) (List.length (Topology.channels t));
  for u = 0 to 4 do
    for v = 0 to 4 do
      if u <> v then check Alcotest.int "one hop" 1 (Topology.distance t u v)
    done
  done

let test_dragonfly_structure () =
  let t = Topology.dragonfly ~a:2 ~h:1 () in
  check Alcotest.int "nodes" 6 (Topology.num_nodes t);
  check
    (Alcotest.option (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int))
    "params" (Some (2, 1, 3))
    (Topology.dragonfly_params t);
  check (Alcotest.option Alcotest.int) "not a fullmesh" None
    (Topology.fullmesh_params t);
  (* every router: a-1 local + h global ports *)
  let chans = Topology.channels t in
  check Alcotest.int "channels" (6 * 2) (List.length chans);
  List.iter
    (fun (u, v) -> check Alcotest.bool "bidirectional" true (List.mem (v, u) chans))
    chans;
  (* palmtree wiring reaches everywhere within local-global-local *)
  for u = 0 to 5 do
    for v = 0 to 5 do
      if u <> v then
        check Alcotest.bool "diameter <= 3" true (Topology.distance t u v <= 3)
    done
  done

let test_kntree_structure () =
  let t = Topology.kary_ntree ~k:2 ~n:2 in
  (* 4 hosts + 2 levels of 2 switches *)
  check Alcotest.int "nodes" 8 (Topology.num_nodes t);
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "params" (Some (2, 2)) (Topology.kntree_params t);
  (* hosts hang off exactly one leaf switch *)
  for host = 0 to 3 do
    check Alcotest.int "host degree" 1 (List.length (Topology.neighbors t host))
  done;
  let chans = Topology.channels t in
  List.iter
    (fun (u, v) -> check Alcotest.bool "bidirectional" true (List.mem (v, u) chans))
    chans;
  (* worst case host-to-host: up n levels to a root, down n levels *)
  for u = 0 to 3 do
    for v = 0 to 3 do
      if u <> v then
        check Alcotest.bool "host distance <= 2n" true (Topology.distance t u v <= 4)
    done
  done

let suite =
  suite
  @ [
      Alcotest.test_case "topology of_string" `Quick test_of_string_ok;
      Alcotest.test_case "topology of_string errors" `Quick test_of_string_errors;
      Alcotest.test_case "fullmesh structure" `Quick test_fullmesh_structure;
      Alcotest.test_case "dragonfly structure" `Quick test_dragonfly_structure;
      Alcotest.test_case "k-ary n-tree structure" `Quick test_kntree_structure;
    ]
