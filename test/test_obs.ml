(* dfr_obs: span nesting, counter determinism across --domains, trace
   export validity, and the no-op guarantee of the disabled sink. *)

open Dfr_routing
open Dfr_core
module Obs = Dfr_obs.Obs
module Json = Dfr_util.Json

let check = Alcotest.check

(* force true concurrency: the pool otherwise clamps to the machine's
   core count and a 1-core CI box would run everything serially *)
let with_cap n f =
  Dfr_util.Domain_pool.set_cap (Some n);
  Fun.protect ~finally:(fun () -> Dfr_util.Domain_pool.set_cap None) f

let test_span_nesting () =
  Obs.enable ();
  let r =
    Obs.span "outer" (fun () ->
        Obs.span "inner" (fun () -> 7) + Obs.span "inner" (fun () -> 1))
  in
  check Alcotest.int "result passes through" 8 r;
  (try ignore (Obs.span "boom" (fun () -> failwith "x") : int)
   with Failure _ -> ());
  let totals = Obs.span_totals () in
  let count name =
    match List.assoc_opt name totals with
    | Some (n, _) -> n
    | None -> Alcotest.failf "span %S not recorded" name
  in
  check Alcotest.int "outer once" 1 (count "outer");
  check Alcotest.int "inner twice" 2 (count "inner");
  check Alcotest.int "recorded despite raise" 1 (count "boom");
  (* the trace carries the nesting depth per event *)
  let depth_of name =
    match Json.member "traceEvents" (Obs.trace_json ()) with
    | Some (Json.List evs) ->
      List.filter_map
        (fun e ->
          match (Json.member "name" e, Json.member "args" e) with
          | Some (Json.String n), Some args when n = name ->
            Option.bind (Json.member "depth" args) Json.to_int
          | _ -> None)
        evs
    | _ -> Alcotest.fail "no traceEvents"
  in
  check Alcotest.(list int) "outer at depth 0" [ 0 ] (depth_of "outer");
  check Alcotest.(list int) "inner at depth 1" [ 1; 1 ] (depth_of "inner");
  Obs.disable ();
  check Alcotest.(list (pair string int)) "disabled sink reads empty" []
    (Obs.counters ())

(* counters must not depend on how many domains did the work; these two
   fixtures exercise both checker shapes that reach the parallel paths
   deterministically (efa: wormhole, acyclic BWG; two-buffer: SAF with a
   full cycle scan) *)
let counters_for name domains =
  with_cap 4 @@ fun () ->
  let e =
    match Registry.find name with
    | Some e -> e
    | None -> Alcotest.failf "no registry entry %S" name
  in
  let net = Registry.network_for e None in
  Obs.enable ();
  ignore (Checker.check ~domains net e.Registry.algo : Checker.report);
  let cs = Obs.counters () in
  Obs.disable ();
  cs

let test_counters_deterministic () =
  List.iter
    (fun name ->
      let serial = counters_for name 1 in
      let parallel = counters_for name 4 in
      check
        Alcotest.(list (pair string int))
        (name ^ ": counters agree across domains")
        serial parallel;
      check Alcotest.bool (name ^ ": counters nonempty") true (serial <> []))
    [ "efa"; "two-buffer" ]

(* same invariance for the phases this PR parallelized directly —
   validate, the per-destination BFS (under both storages) and the
   move-graph materialization — without the checker around them *)
let space_counters ~storage domains =
  with_cap 4 @@ fun () ->
  let e = Option.get (Registry.find "efa") in
  let net = Registry.network_for e None in
  Obs.enable ();
  let space = State_space.build ~storage ~domains net e.Registry.algo in
  State_space.materialize_move_graphs ~domains space;
  let cs = Obs.counters () in
  Obs.disable ();
  cs

let test_space_counters_deterministic () =
  List.iter
    (fun (label, storage) ->
      let serial = space_counters ~storage 1 in
      let parallel = space_counters ~storage 4 in
      check
        Alcotest.(list (pair string int))
        (label ^ ": space counters agree across domains")
        serial parallel;
      check Alcotest.bool (label ^ ": counters nonempty") true (serial <> []))
    [ ("dense", `Dense); ("sparse", `Sparse) ]

let test_trace_exports_valid_json () =
  let e = Option.get (Registry.find "efa") in
  let net = Registry.network_for e None in
  Obs.enable ();
  ignore (Checker.check ~domains:2 net e.Registry.algo : Checker.report);
  let trace = Json.to_string_pretty (Obs.trace_json ()) in
  let metrics = Json.to_string (Obs.metrics_json ()) in
  Obs.disable ();
  (match Json.of_string metrics with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "metrics JSON unparseable: %s" err);
  match Json.of_string trace with
  | Error err -> Alcotest.failf "trace JSON unparseable: %s" err
  | Ok doc -> (
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | None | Some [] -> Alcotest.fail "empty or missing traceEvents"
    | Some evs ->
      List.iter
        (fun ev ->
          check Alcotest.(option string) "complete event" (Some "X")
            (Option.bind (Json.member "ph" ev) Json.to_str);
          List.iter
            (fun key ->
              if Json.member key ev = None then
                Alcotest.failf "trace event lacks %S" key)
            [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ])
        evs;
      (* the per-stage pipeline spans are always present, even for a
         Theorem 1 verdict where the later stages did no work *)
      let names =
        List.filter_map (fun e -> Option.bind (Json.member "name" e) Json.to_str) evs
      in
      List.iter
        (fun stage ->
          if not (List.mem stage names) then
            Alcotest.failf "trace lacks stage span %S" stage)
        [
          "space.build"; "bwg.build"; "bwg.closure"; "checker.knot";
          "checker.cycle-scan"; "checker.classify";
        ])

(* with the collector disabled the probes must be pure pass-throughs:
   same verdict, byte-identical JSON report *)
let report_bytes ~instrumented =
  if instrumented then Obs.enable () else Obs.disable ();
  let e = Option.get (Registry.find "efa") in
  let net = Registry.network_for e None in
  let report = Checker.check net e.Registry.algo in
  let s = Report_json.to_string net e.Registry.algo report in
  Obs.disable ();
  s

let test_disabled_sink_is_noop () =
  check Alcotest.string "report bytes identical"
    (report_bytes ~instrumented:false)
    (report_bytes ~instrumented:true)

(* Timestamps are monotonic-clock readings: every exported ts must be
   nonnegative (nothing before the collector's epoch) and the sorted
   export must be nondecreasing.  Under gettimeofday an NTP step could
   violate both; this pins the Monotime re-base.  The wall-clock anchor
   is exported separately as epochWallUs. *)
let test_timestamps_monotonic () =
  Obs.enable ();
  for _ = 1 to 100 do
    Obs.span "tick" (fun () -> Obs.span "tock" (fun () -> ()))
  done;
  let doc = Obs.trace_json () in
  let wall =
    match Json.member "epochWallUs" doc with
    | Some (Json.Float w) -> w
    | _ -> Alcotest.fail "trace lacks epochWallUs"
  in
  check Alcotest.bool "wall epoch is a plausible gettimeofday" true
    (wall > 1e15 (* ~2001 in µs; catches a zero or a ns/ms mixup *));
  (match Option.bind (Json.member "traceEvents" doc) Json.to_list with
  | None | Some [] -> Alcotest.fail "no trace events"
  | Some evs ->
    let ts =
      List.filter_map
        (fun e ->
          match Json.member "ts" e with Some (Json.Float t) -> Some t | _ -> None)
        evs
    in
    check Alcotest.int "every event has ts" (List.length evs) (List.length ts);
    List.iter
      (fun t ->
        if t < 0.0 then Alcotest.failf "event before the epoch: ts=%f" t)
      ts;
    if List.sort compare ts <> ts then
      Alcotest.fail "exported events are not in nondecreasing ts order");
  Obs.disable ();
  check Alcotest.bool "epochWallUs absent when disabled" true
    (Json.member "epochWallUs" (Obs.trace_json ()) = None)

let suite =
  [
    Alcotest.test_case "span nesting and depth" `Quick test_span_nesting;
    Alcotest.test_case "counters deterministic across domains" `Quick
      test_counters_deterministic;
    Alcotest.test_case "space counters deterministic across domains" `Quick
      test_space_counters_deterministic;
    Alcotest.test_case "trace and metrics export valid JSON" `Quick
      test_trace_exports_valid_json;
    Alcotest.test_case "disabled sink changes nothing" `Quick
      test_disabled_sink_is_noop;
    Alcotest.test_case "timestamps are monotonic" `Quick
      test_timestamps_monotonic;
  ]
