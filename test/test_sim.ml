(* Tests for dfr_sim: traffic generation, both simulators, conservation
   laws, deadlock detection and checker-witness replay. *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_sim

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* lower bound for threshold checks; an idle run counts as 0 *)
let max_lat s = Option.value ~default:0 (Stats.max_latency s)

let cube3 = Net.wormhole (Topology.hypercube 3) ~vcs:2
let topo3 = Net.topology_exn cube3

(* ---------------- traffic ---------------- *)

let test_traffic_batch_counts () =
  let t = Traffic.batch topo3 ~pattern:Traffic.Uniform ~count:5 ~length:4 ~seed:1 in
  check Alcotest.int "5 per node" (5 * 8) (Traffic.count t);
  List.iter
    (fun (p : Traffic.packet) ->
      check Alcotest.bool "src <> dst" true (p.Traffic.src <> p.Traffic.dst);
      check Alcotest.int "inject at 0" 0 p.Traffic.inject_at)
    t

let test_traffic_generate_rate_zero () =
  let t = Traffic.generate topo3 ~pattern:Traffic.Uniform ~rate:0.0 ~length:4
      ~horizon:100 ~seed:1 in
  check Alcotest.int "no packets" 0 (Traffic.count t)

let test_traffic_deterministic () =
  let t1 = Traffic.generate topo3 ~pattern:Traffic.Uniform ~rate:0.2 ~length:4
      ~horizon:50 ~seed:9 in
  let t2 = Traffic.generate topo3 ~pattern:Traffic.Uniform ~rate:0.2 ~length:4
      ~horizon:50 ~seed:9 in
  check Alcotest.bool "same seed same workload" true (t1 = t2)

let test_traffic_patterns () =
  (* bit complement on the 3-cube: 0 <-> 7 *)
  let g = Dfr_util.Prng.create 1 in
  check (Alcotest.option Alcotest.int) "complement of 0" (Some 7)
    (Traffic.pattern_dest topo3 Traffic.Bit_complement g 0);
  check (Alcotest.option Alcotest.int) "hotspot" (Some 5)
    (Traffic.pattern_dest topo3 (Traffic.Hotspot 5) g 0);
  check (Alcotest.option Alcotest.int) "hotspot self" None
    (Traffic.pattern_dest topo3 (Traffic.Hotspot 5) g 5);
  (* transpose of a square mesh swaps coordinates *)
  let m = Topology.mesh [| 4; 4 |] in
  let n21 = Topology.node_of_coord m [| 2; 1 |] in
  let n12 = Topology.node_of_coord m [| 1; 2 |] in
  check (Alcotest.option Alcotest.int) "transpose" (Some n12)
    (Traffic.pattern_dest m Traffic.Transpose g n21)

(* Regression: OCaml's [mod] keeps the sign of its argument, so a
   negative hotspot node used to come back as a negative destination (an
   out-of-bounds injection downstream).  Out-of-range hotspots must raise
   instead, in both directions. *)
let test_traffic_hotspot_out_of_range () =
  let g = Dfr_util.Prng.create 1 in
  Alcotest.check_raises "negative hotspot"
    (Invalid_argument "Traffic: hotspot node -3 out of range 0..7") (fun () ->
      ignore (Traffic.pattern_dest topo3 (Traffic.Hotspot (-3)) g 0));
  Alcotest.check_raises "hotspot past the last node"
    (Invalid_argument "Traffic: hotspot node 8 out of range 0..7") (fun () ->
      ignore (Traffic.pattern_dest topo3 (Traffic.Hotspot 8) g 0))

let test_batch_uniform_topology_free () =
  let t = Traffic.batch_uniform ~num_nodes:5 ~count:3 ~length:4 ~seed:7 in
  check Alcotest.int "count per node" (5 * 3) (Traffic.count t);
  List.iter
    (fun (p : Traffic.packet) ->
      check Alcotest.bool "destination in range" true
        (p.Traffic.dst >= 0 && p.Traffic.dst < 5 && p.Traffic.dst <> p.Traffic.src))
    t;
  check Alcotest.bool "deterministic" true
    (t = Traffic.batch_uniform ~num_nodes:5 ~count:3 ~length:4 ~seed:7)

let test_scripted_entry_point () =
  (* the scripted chain is followed exactly: on the 2-cube under e-cube
     routing the packet may not take the adaptive channel, but a script
     can force any permitted sequence *)
  let net = Net.wormhole (Topology.hypercube 2) ~vcs:2 in
  let chain =
    [
      Buf.id (Net.channel net ~src:0 ~dim:0 ~dir:Topology.Plus ~vc:0);
      Buf.id (Net.channel net ~src:1 ~dim:1 ~dir:Topology.Plus ~vc:0);
    ]
  in
  let t = Traffic.scripted ~src:0 ~dst:3 ~length:2 chain in
  check Alcotest.int "one packet" 1 (Traffic.count t);
  match Wormhole_sim.run net Hypercube_wormhole.ecube t with
  | Wormhole_sim.Completed _ -> ()
  | o -> Alcotest.failf "scripted packet did not deliver: %a" Wormhole_sim.pp_outcome o

let prop_uniform_dest_valid =
  QCheck.Test.make ~name:"uniform destinations valid" ~count:300
    QCheck.(pair (int_range 0 7) int)
    (fun (src, seed) ->
      let g = Dfr_util.Prng.create seed in
      match Traffic.pattern_dest topo3 Traffic.Uniform g src with
      | Some d -> d >= 0 && d < 8 && d <> src
      | None -> false)

(* ---------------- stats ---------------- *)

let test_stats () =
  let s =
    { Stats.cycles = 100; injected = 5; delivered = 4; flits_delivered = 40;
      latencies = [ 10; 20; 30; 40 ] }
  in
  check (Alcotest.option (Alcotest.float 1e-9)) "mean" (Some 25.0)
    (Stats.mean_latency s);
  check (Alcotest.option Alcotest.int) "max" (Some 40) (Stats.max_latency s);
  check Alcotest.int "p95" 40 (Stats.percentile_latency s 0.95);
  (* nearest-rank: p50 of 4 samples is rank ceil(0.5*4)=2, the 2nd *)
  check Alcotest.int "p50" 20 (Stats.percentile_latency s 0.5);
  check (Alcotest.float 1e-9) "throughput" 0.05 (Stats.throughput s ~nodes:8);
  check (Alcotest.option (Alcotest.float 1e-9)) "empty mean" None
    (Stats.mean_latency Stats.empty);
  check (Alcotest.option Alcotest.int) "empty max" None
    (Stats.max_latency Stats.empty);
  check Alcotest.int "empty percentile" 0
    (Stats.percentile_latency Stats.empty 0.95)

(* regression: the percentile rank was truncating instead of nearest-rank,
   so p50 of [1;2] returned 2 and p95 over exactly 20 samples returned the
   max instead of the 19th sample *)
let test_percentile_nearest_rank () =
  let with_lat ls = { Stats.empty with latencies = ls } in
  check Alcotest.int "p50 of [1;2]" 1
    (Stats.percentile_latency (with_lat [ 1; 2 ]) 0.5);
  let twenty = List.init 20 (fun i -> i + 1) in
  check Alcotest.int "p95 of 1..20" 19
    (Stats.percentile_latency (with_lat twenty) 0.95);
  check Alcotest.int "p100 of 1..20" 20
    (Stats.percentile_latency (with_lat twenty) 1.0);
  check Alcotest.int "p0 clamps to first" 1
    (Stats.percentile_latency (with_lat twenty) 0.0);
  check Alcotest.int "singleton" 7
    (Stats.percentile_latency (with_lat [ 7 ]) 0.5)

(* ---------------- wormhole simulator ---------------- *)

let run_wh ?(seed = 1) ?(capacity = 4) net algo traffic =
  Wormhole_sim.run
    ~config:{ Wormhole_sim.default_config with seed; capacity }
    net algo traffic

(* regression: the report of an idle run (nothing delivered) used to embed
   a literal nan for the mean latency, making the whole JSON unparseable *)
let test_empty_stats_report_json () =
  let module Json = Dfr_util.Json in
  let o = run_wh cube3 Hypercube_wormhole.efa [] in
  let doc = Sim_report.wormhole o ~nodes:8 in
  let s = Json.to_string doc in
  (match Json.of_string s with
  | Error e -> Alcotest.failf "report does not re-parse: %s\n%s" e s
  | Ok reparsed ->
    check Alcotest.bool "round-trip preserves shape" true
      (Json.member "stats" reparsed <> None));
  check Alcotest.bool "mean latency degrades to null" true
    (match Option.bind (Json.member "stats" doc) (Json.member "mean_latency") with
    | Some Json.Null -> true
    | _ -> false)

let test_single_packet_delivery () =
  let t = [ { Traffic.src = 0; dst = 7; length = 6; inject_at = 0; mode = Traffic.Adaptive } ] in
  match run_wh cube3 Hypercube_wormhole.efa t with
  | Wormhole_sim.Completed s ->
    check Alcotest.int "delivered" 1 s.Stats.delivered;
    check Alcotest.int "flits" 6 s.Stats.flits_delivered;
    (* 3 hops + pipeline: latency at least hops + length *)
    check Alcotest.bool "latency sane" true (max_lat s >= 6 + 3)
  | o -> Alcotest.failf "expected completion, got %a" Wormhole_sim.pp_outcome o

let test_conservation_under_load () =
  let t = Traffic.batch topo3 ~pattern:Traffic.Uniform ~count:10 ~length:5 ~seed:3 in
  match run_wh cube3 Hypercube_wormhole.efa t with
  | Wormhole_sim.Completed s ->
    check Alcotest.int "all packets" (Traffic.count t) s.Stats.delivered;
    check Alcotest.int "all flits" (5 * Traffic.count t) s.Stats.flits_delivered;
    check Alcotest.int "latency per packet" s.Stats.delivered
      (List.length s.Stats.latencies)
  | o -> Alcotest.failf "expected completion, got %a" Wormhole_sim.pp_outcome o

let test_proven_algorithms_never_deadlock () =
  (* every deadlock-free verdict must survive a saturating stress batch *)
  List.iter
    (fun (name, algo) ->
      List.iter
        (fun seed ->
          let t =
            Traffic.batch topo3 ~pattern:Traffic.Uniform ~count:15 ~length:12
              ~seed
          in
          match run_wh ~seed ~capacity:2 cube3 algo t with
          | Wormhole_sim.Completed _ -> ()
          | o ->
            Alcotest.failf "%s seed %d: %a" name seed Wormhole_sim.pp_outcome o)
        [ 1; 2; 3 ])
    [
      ("ecube", Hypercube_wormhole.ecube);
      ("duato", Hypercube_wormhole.duato);
      ("efa", Hypercube_wormhole.efa);
    ]

let test_turn_models_never_deadlock () =
  let m = Topology.mesh [| 4; 4 |] in
  let net = Net.wormhole m ~vcs:1 in
  List.iter
    (fun (name, algo) ->
      let t = Traffic.batch m ~pattern:Traffic.Uniform ~count:10 ~length:8 ~seed:5 in
      match run_wh ~capacity:2 net algo t with
      | Wormhole_sim.Completed _ -> ()
      | o -> Alcotest.failf "%s: %a" name Wormhole_sim.pp_outcome o)
    [
      ("west-first", Mesh_wormhole.west_first);
      ("north-last", Mesh_wormhole.north_last);
      ("negative-first", Mesh_wormhole.negative_first);
      ("dimension-order", Mesh_wormhole.dimension_order);
    ]

let test_dateline_never_deadlocks () =
  let r = Topology.ring 6 in
  let net = Net.wormhole r ~vcs:2 in
  let t = Traffic.batch r ~pattern:Traffic.Uniform ~count:20 ~length:10 ~seed:2 in
  match run_wh ~capacity:2 net Torus_wormhole.dateline t with
  | Wormhole_sim.Completed _ -> ()
  | o -> Alcotest.failf "dateline: %a" Wormhole_sim.pp_outcome o

let test_relaxed_efa_deadlocks_under_stress () =
  let t = Traffic.batch topo3 ~pattern:Traffic.Uniform ~count:40 ~length:24 ~seed:3 in
  match run_wh ~seed:3 cube3 Hypercube_wormhole.efa_relaxed t with
  | Wormhole_sim.Deadlocked _ -> ()
  | o -> Alcotest.failf "expected deadlock, got %a" Wormhole_sim.pp_outcome o

let test_scripted_packet_follows_script () =
  (* force a packet along a specific (legal) dimension order *)
  let chan src dim dir vc = Buf.id (Net.channel cube3 ~src ~dim ~dir ~vc) in
  let script = [ chan 0 2 Topology.Plus 1; chan 4 0 Topology.Plus 1 ] in
  let t = [ { Traffic.src = 0; dst = 5; length = 3; inject_at = 0;
              mode = Traffic.Scripted script } ] in
  match run_wh cube3 Hypercube_wormhole.efa t with
  | Wormhole_sim.Completed s -> check Alcotest.int "delivered" 1 s.Stats.delivered
  | o -> Alcotest.failf "scripted run: %a" Wormhole_sim.pp_outcome o

let test_preloaded_knot_deadlocks () =
  let space = State_space.build cube3 Hypercube_wormhole.efa_relaxed in
  match Deadlock_config.find space with
  | None -> Alcotest.fail "knot expected"
  | Some config -> (
    match
      Wormhole_sim.run_preloaded cube3 Hypercube_wormhole.efa_relaxed
        (Dfr_scenario.Scenario.preloads_of_knot config)
    with
    | Wormhole_sim.Deadlocked { cycle; _ } ->
      check Alcotest.bool "detected early" true (cycle < 100)
    | o -> Alcotest.failf "expected deadlock, got %a" Wormhole_sim.pp_outcome o)

let test_preloaded_nondeadlock_drains () =
  (* a single preloaded EFA packet mid-flight simply finishes *)
  let chain = [ Buf.id (Net.channel cube3 ~src:0 ~dim:0 ~dir:Topology.Plus ~vc:1) ] in
  match
    Wormhole_sim.run_preloaded cube3 Hypercube_wormhole.efa
      [ { Wormhole_sim.chain; dest = 3; frozen = false } ]
  with
  | Wormhole_sim.Completed s -> check Alcotest.int "drained" 1 s.Stats.delivered
  | o -> Alcotest.failf "expected drain, got %a" Wormhole_sim.pp_outcome o

let test_frozen_packets_hold () =
  (* a frozen filler blocks a scripted packet forever *)
  let b = Buf.id (Net.channel cube3 ~src:0 ~dim:0 ~dir:Topology.Plus ~vc:0) in
  let preloads =
    [
      { Wormhole_sim.chain = [ b ]; dest = 1; frozen = true };
      {
        Wormhole_sim.chain =
          [ Buf.id (Net.channel cube3 ~src:2 ~dim:1 ~dir:Topology.Minus ~vc:0) ];
        dest = 1;
        frozen = false;
      };
    ]
  in
  (* the unfrozen ecube packet at node 0 needs exactly the frozen buffer *)
  match Wormhole_sim.run_preloaded cube3 Hypercube_wormhole.ecube preloads with
  | Wormhole_sim.Deadlocked { in_flight; _ } ->
    check Alcotest.int "one live packet stuck" 1 in_flight
  | o -> Alcotest.failf "expected deadlock, got %a" Wormhole_sim.pp_outcome o

let prop_wormhole_conservation =
  QCheck.Test.make ~name:"wormhole conserves packets across seeds" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let t = Traffic.batch topo3 ~pattern:Traffic.Uniform ~count:5 ~length:6 ~seed in
      match run_wh ~seed cube3 Hypercube_wormhole.efa t with
      | Wormhole_sim.Completed s ->
        s.Stats.delivered = Traffic.count t
        && s.Stats.flits_delivered = 6 * Traffic.count t
      | _ -> false)

(* ---------------- SAF simulator ---------------- *)

let mesh33 = Topology.mesh [| 3; 3 |]
let saf33 = Net.store_and_forward mesh33 ~classes:2

let test_saf_single_packet () =
  let t = [ { Traffic.src = 0; dst = 8; length = 1; inject_at = 0; mode = Traffic.Adaptive } ] in
  match Saf_sim.run saf33 Mesh_saf.two_buffer t with
  | Saf_sim.Completed s ->
    check Alcotest.int "delivered" 1 s.Stats.delivered;
    (* 4 hops + injection + consumption *)
    check Alcotest.bool "latency >= 5" true (max_lat s >= 5)
  | o -> Alcotest.failf "expected completion, got %a" Saf_sim.pp_outcome o

let test_saf_two_buffer_stress () =
  List.iter
    (fun seed ->
      let t = Traffic.batch mesh33 ~pattern:Traffic.Uniform ~count:25 ~length:1 ~seed in
      match
        Saf_sim.run ~config:{ Saf_sim.max_cycles = 100_000; seed } saf33
          Mesh_saf.two_buffer t
      with
      | Saf_sim.Completed s ->
        check Alcotest.int "all delivered" (Traffic.count t) s.Stats.delivered
      | o -> Alcotest.failf "seed %d: %a" seed Saf_sim.pp_outcome o)
    [ 1; 2; 3; 4 ]

let test_saf_single_buffer_deadlocks () =
  let net = Net.store_and_forward mesh33 ~classes:1 in
  let t = Traffic.batch mesh33 ~pattern:Traffic.Uniform ~count:30 ~length:1 ~seed:6 in
  match Saf_sim.run net Mesh_saf.single_buffer t with
  | Saf_sim.Deadlocked _ -> ()
  | o -> Alcotest.failf "expected deadlock, got %a" Saf_sim.pp_outcome o

let test_saf_hotspot_completes () =
  let t = Traffic.generate mesh33 ~pattern:(Traffic.Hotspot 4) ~rate:0.05 ~length:1
      ~horizon:400 ~seed:2 in
  match Saf_sim.run saf33 Mesh_saf.two_buffer t with
  | Saf_sim.Completed s ->
    check Alcotest.int "all delivered" (Traffic.count t) s.Stats.delivered
  | o -> Alcotest.failf "hotspot: %a" Saf_sim.pp_outcome o

(* ---------------- replay bridge ---------------- *)

let test_replay_every_deadlocking_entry () =
  (* every catalogue algorithm whose checker verdict is a deadlock must be
     confirmed dynamically by the replay bridge *)
  List.iter
    (fun (e : Registry.entry) ->
      if e.Registry.expected_deadlock_free = Some false then begin
        let net = Registry.network_for e None in
        match Checker.verdict net e.Registry.algo with
        | Checker.Deadlock_possible failure ->
          check
            (Alcotest.option Alcotest.bool)
            (e.Registry.name ^ " replay") (Some true)
            (Dfr_scenario.Scenario.replay net e.Registry.algo failure)
        | v ->
          Alcotest.failf "%s: expected deadlock verdict, got %a" e.Registry.name
            (Checker.pp_verdict net) v
      end)
    Registry.all

let suite =
  [
    Alcotest.test_case "traffic batch counts" `Quick test_traffic_batch_counts;
    Alcotest.test_case "traffic rate zero" `Quick test_traffic_generate_rate_zero;
    Alcotest.test_case "traffic deterministic" `Quick test_traffic_deterministic;
    Alcotest.test_case "traffic patterns" `Quick test_traffic_patterns;
    Alcotest.test_case "hotspot out of range raises" `Quick
      test_traffic_hotspot_out_of_range;
    Alcotest.test_case "topology-free uniform batch" `Quick
      test_batch_uniform_topology_free;
    Alcotest.test_case "scripted entry point" `Quick test_scripted_entry_point;
    Alcotest.test_case "stats accessors" `Quick test_stats;
    Alcotest.test_case "percentile nearest rank" `Quick
      test_percentile_nearest_rank;
    Alcotest.test_case "empty-stats report JSON" `Quick
      test_empty_stats_report_json;
    Alcotest.test_case "single packet delivery" `Quick test_single_packet_delivery;
    Alcotest.test_case "conservation under load" `Quick test_conservation_under_load;
    Alcotest.test_case "proven algorithms never deadlock" `Slow
      test_proven_algorithms_never_deadlock;
    Alcotest.test_case "turn models never deadlock" `Slow test_turn_models_never_deadlock;
    Alcotest.test_case "dateline never deadlocks" `Quick test_dateline_never_deadlocks;
    Alcotest.test_case "relaxed EFA deadlocks under stress" `Quick
      test_relaxed_efa_deadlocks_under_stress;
    Alcotest.test_case "scripted packet" `Quick test_scripted_packet_follows_script;
    Alcotest.test_case "preloaded knot deadlocks" `Quick test_preloaded_knot_deadlocks;
    Alcotest.test_case "preloaded non-deadlock drains" `Quick
      test_preloaded_nondeadlock_drains;
    Alcotest.test_case "frozen packets hold" `Quick test_frozen_packets_hold;
    Alcotest.test_case "saf single packet" `Quick test_saf_single_packet;
    Alcotest.test_case "saf two-buffer stress" `Quick test_saf_two_buffer_stress;
    Alcotest.test_case "saf single-buffer deadlocks" `Quick test_saf_single_buffer_deadlocks;
    Alcotest.test_case "saf hotspot completes" `Quick test_saf_hotspot_completes;
    Alcotest.test_case "replay all deadlocking entries" `Slow
      test_replay_every_deadlocking_entry;
    qtest prop_wormhole_conservation;
  ]

(* ---------------- deadlock diagnostics ---------------- *)

let test_wait_for_graph_is_cyclic () =
  (* at a detected deadlock, the packet wait-for graph restricted to
     in-flight packets must contain a cycle *)
  let t = Traffic.batch topo3 ~pattern:Traffic.Uniform ~count:40 ~length:24 ~seed:3 in
  match run_wh ~seed:3 cube3 Hypercube_wormhole.efa_relaxed t with
  | Wormhole_sim.Deadlocked { wait_for; _ } ->
    check Alcotest.bool "edges reported" true (wait_for <> []);
    let ids =
      List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) wait_for)
    in
    let index = Hashtbl.create 64 in
    List.iteri (fun i id -> Hashtbl.replace index id i) ids;
    let g = Dfr_graph.Digraph.create (List.length ids) in
    List.iter
      (fun (a, b) ->
        Dfr_graph.Digraph.add_edge g (Hashtbl.find index a) (Hashtbl.find index b))
      wait_for;
    check Alcotest.bool "wait-for graph cyclic" false
      (Dfr_graph.Traversal.is_acyclic g)
  | o -> Alcotest.failf "expected deadlock, got %a" Wormhole_sim.pp_outcome o

let suite =
  suite
  @ [
      Alcotest.test_case "wait-for graph cyclic at deadlock" `Quick
        test_wait_for_graph_is_cyclic;
    ]

(* ---------------- pipelined router simulator ---------------- *)

let test_router_single_packet () =
  let t = [ { Traffic.src = 0; dst = 7; length = 6; inject_at = 0; mode = Traffic.Adaptive } ] in
  match Router_sim.run cube3 Hypercube_wormhole.efa t with
  | Router_sim.Completed s ->
    check Alcotest.int "delivered" 1 s.Stats.delivered;
    check Alcotest.int "flits" 6 s.Stats.flits_delivered;
    (* pipeline overhead: at least RC+VA per hop on top of serialization *)
    check Alcotest.bool "latency above flit-sim floor" true
      (max_lat s >= 6 + (3 * 2))
  | o -> Alcotest.failf "expected completion, got %a" Router_sim.pp_outcome o

let test_router_conservation () =
  let t = Traffic.batch topo3 ~pattern:Traffic.Uniform ~count:8 ~length:5 ~seed:21 in
  match Router_sim.run cube3 Hypercube_wormhole.efa t with
  | Router_sim.Completed s ->
    check Alcotest.int "all packets" (Traffic.count t) s.Stats.delivered;
    check Alcotest.int "all flits" (5 * Traffic.count t) s.Stats.flits_delivered
  | o -> Alcotest.failf "expected completion, got %a" Router_sim.pp_outcome o

let test_router_proven_algorithms_complete () =
  List.iter
    (fun (name, algo) ->
      let t = Traffic.batch topo3 ~pattern:Traffic.Uniform ~count:10 ~length:8 ~seed:9 in
      match
        Router_sim.run ~config:{ Router_sim.default_config with fifo_depth = 2 }
          cube3 algo t
      with
      | Router_sim.Completed _ -> ()
      | o -> Alcotest.failf "%s: %a" name Router_sim.pp_outcome o)
    [
      ("ecube", Hypercube_wormhole.ecube);
      ("duato", Hypercube_wormhole.duato);
      ("efa", Hypercube_wormhole.efa);
    ]

let test_router_relaxed_deadlocks () =
  (* deterministic round-robin arbitration dodges the stochastic jam under
     uniform traffic; bit-complement exercises both directions of every
     dimension and wedges it reliably *)
  let t = Traffic.batch topo3 ~pattern:Traffic.Bit_complement ~count:40 ~length:32 ~seed:5 in
  match
    Router_sim.run ~config:{ Router_sim.fifo_depth = 2; max_cycles = 30_000; seed = 5 }
      cube3 Hypercube_wormhole.efa_relaxed t
  with
  | Router_sim.Deadlocked _ -> ()
  | o -> Alcotest.failf "expected deadlock, got %a" Router_sim.pp_outcome o

let test_router_agrees_with_flit_sim_on_deadlock () =
  (* both simulators must agree on the deadlock/no-deadlock outcome under
     the same adversarial batch: the certified algorithms always drain,
     the broken one wedges in both *)
  let t = Traffic.batch topo3 ~pattern:Traffic.Bit_complement ~count:40 ~length:32 ~seed:5 in
  List.iter
    (fun (algo, expect_deadlock) ->
      let r =
        Router_sim.run
          ~config:{ Router_sim.fifo_depth = 2; max_cycles = 60_000; seed = 5 }
          cube3 algo t
      in
      let w = run_wh ~seed:5 ~capacity:2 cube3 algo t in
      check Alcotest.bool
        (algo.Algo.name ^ " router outcome")
        expect_deadlock
        (Router_sim.is_deadlocked r);
      check Alcotest.bool
        (algo.Algo.name ^ " flit outcome")
        expect_deadlock
        (Wormhole_sim.is_deadlocked w))
    [
      (Hypercube_wormhole.efa, false);
      (Hypercube_wormhole.ecube, false);
      (Hypercube_wormhole.efa_relaxed, true);
    ]

let test_router_latency_dominates_flit_sim () =
  (* same single-packet run: the pipelined router is slower by construction *)
  let t = [ { Traffic.src = 0; dst = 7; length = 4; inject_at = 0; mode = Traffic.Adaptive } ] in
  let r = max_lat (Router_sim.stats (Router_sim.run cube3 Hypercube_wormhole.ecube t)) in
  let w = max_lat (Wormhole_sim.stats (run_wh cube3 Hypercube_wormhole.ecube t)) in
  check Alcotest.bool "router latency higher" true (r > w)

let suite =
  suite
  @ [
      Alcotest.test_case "router single packet" `Quick test_router_single_packet;
      Alcotest.test_case "router conservation" `Quick test_router_conservation;
      Alcotest.test_case "router proven algorithms complete" `Quick
        test_router_proven_algorithms_complete;
      Alcotest.test_case "router relaxed deadlocks" `Quick test_router_relaxed_deadlocks;
      Alcotest.test_case "router agrees with flit sim" `Quick
        test_router_agrees_with_flit_sim_on_deadlock;
      Alcotest.test_case "router latency dominates flit sim" `Quick
        test_router_latency_dominates_flit_sim;
    ]

(* ---------------- broader simulator coverage ---------------- *)

let test_router_turn_models_on_mesh () =
  let m = Topology.mesh [| 4; 4 |] in
  let net = Net.wormhole m ~vcs:1 in
  List.iter
    (fun (name, algo) ->
      let t = Traffic.batch m ~pattern:Traffic.Uniform ~count:6 ~length:6 ~seed:13 in
      match
        Router_sim.run ~config:{ Router_sim.default_config with fifo_depth = 2 }
          net algo t
      with
      | Router_sim.Completed s ->
        check Alcotest.int (name ^ " delivered") (Traffic.count t) s.Stats.delivered
      | o -> Alcotest.failf "%s: %a" name Router_sim.pp_outcome o)
    [
      ("west-first", Mesh_wormhole.west_first);
      ("odd-even", Mesh_wormhole.odd_even);
      ("dimension-order", Mesh_wormhole.dimension_order);
    ]

let test_router_planar_on_3d_mesh () =
  let m = Topology.mesh [| 3; 3; 3 |] in
  let net = Net.wormhole m ~vcs:3 in
  let t = Traffic.batch m ~pattern:Traffic.Uniform ~count:4 ~length:6 ~seed:8 in
  match Router_sim.run net Mesh_wormhole.planar_adaptive t with
  | Router_sim.Completed s ->
    check Alcotest.int "delivered" (Traffic.count t) s.Stats.delivered
  | o -> Alcotest.failf "planar-adaptive router run: %a" Router_sim.pp_outcome o

let test_router_dateline_on_ring () =
  let r = Topology.ring 6 in
  let net = Net.wormhole r ~vcs:2 in
  let t = Traffic.batch r ~pattern:Traffic.Uniform ~count:8 ~length:6 ~seed:4 in
  match Router_sim.run net Torus_wormhole.dateline t with
  | Router_sim.Completed s ->
    check Alcotest.int "delivered" (Traffic.count t) s.Stats.delivered
  | o -> Alcotest.failf "dateline router run: %a" Router_sim.pp_outcome o

let test_shuffle_pattern () =
  let g = Dfr_util.Prng.create 1 in
  (* perfect shuffle on the 8-node id space: 3 -> 6 *)
  check (Alcotest.option Alcotest.int) "3 -> 6" (Some 6)
    (Traffic.pattern_dest topo3 Traffic.Shuffle g 3);
  check (Alcotest.option Alcotest.int) "1 -> 2" (Some 2)
    (Traffic.pattern_dest topo3 Traffic.Shuffle g 1);
  (* fixed points map to None *)
  check (Alcotest.option Alcotest.int) "0 fixed" None
    (Traffic.pattern_dest topo3 Traffic.Shuffle g 0);
  check (Alcotest.option Alcotest.int) "7 fixed" None
    (Traffic.pattern_dest topo3 Traffic.Shuffle g 7)

let test_transpose_traffic_completes () =
  let t = Traffic.generate topo3 ~pattern:Traffic.Transpose ~rate:0.1 ~length:6
      ~horizon:300 ~seed:5 in
  match run_wh cube3 Hypercube_wormhole.efa t with
  | Wormhole_sim.Completed s ->
    check Alcotest.int "delivered" (Traffic.count t) s.Stats.delivered
  | o -> Alcotest.failf "transpose: %a" Wormhole_sim.pp_outcome o

let test_staggered_injection_times () =
  (* inject_at is honoured: a packet scheduled late cannot finish early *)
  let t =
    [
      { Traffic.src = 0; dst = 7; length = 4; inject_at = 100; mode = Traffic.Adaptive };
    ]
  in
  match run_wh cube3 Hypercube_wormhole.efa t with
  | Wormhole_sim.Completed s ->
    check Alcotest.bool "total cycles past injection time" true (s.Stats.cycles >= 100)
  | o -> Alcotest.failf "staggered: %a" Wormhole_sim.pp_outcome o

let suite =
  suite
  @ [
      Alcotest.test_case "router turn models on mesh" `Quick
        test_router_turn_models_on_mesh;
      Alcotest.test_case "router planar-adaptive 3-D" `Quick test_router_planar_on_3d_mesh;
      Alcotest.test_case "router dateline on ring" `Quick test_router_dateline_on_ring;
      Alcotest.test_case "shuffle pattern" `Quick test_shuffle_pattern;
      Alcotest.test_case "transpose traffic completes" `Quick
        test_transpose_traffic_completes;
      Alcotest.test_case "staggered injection times" `Quick test_staggered_injection_times;
    ]
