(* The differential fuzzing harness, tested three ways:

   1. the oracle agrees with the checker on the whole registry catalogue
      (bounded seeds/horizon) — the curated counterpart of the random
      campaigns;
   2. campaigns are deterministic: same seed => identical summary,
      regardless of the domain count;
   3. the harness actually catches bugs: a deliberately lying checker is
      flagged within a few trials and the disagreement shrinks to a
      small case whose printed .dfr spec recompiles into a genuine
      deadlock.

   Plus the spec printer's round-trip property on generated cases. *)

open Dfr_routing
open Dfr_core
open Dfr_fuzz

let check = Alcotest.check

(* ---------------- registry-wide agreement ---------------- *)

let test_registry_agreement () =
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e None in
      let o = Oracle.confront ~sim_seeds:[ 1 ] ~count:3 net e.Registry.algo in
      match o.Oracle.disagreement with
      | None -> ()
      | Some d ->
        Alcotest.failf "catalogue entry %s: %s" e.Registry.name
          (Oracle.describe d))
    Registry.all

(* ---------------- campaign determinism ---------------- *)

let summary_fingerprint (s : Fuzz.summary) =
  Printf.sprintf "%d/%d/%d/%d/%d/%d/%d [%s]" s.Fuzz.trials s.Fuzz.free
    s.Fuzz.deadlock s.Fuzz.unknown s.Fuzz.confirmed s.Fuzz.refuted
    s.Fuzz.not_replayable
    (String.concat ";"
       (List.map
          (fun (f : Fuzz.finding) ->
            Printf.sprintf "t%d:%s" f.Fuzz.trial
              (match f.Fuzz.spec with Ok t -> t | Error e -> "!" ^ e))
          s.Fuzz.findings))

let test_determinism () =
  let cfg = { Fuzz.default_config with trials = 60; seed = 123 } in
  let a = Fuzz.run cfg in
  let b = Fuzz.run cfg in
  check Alcotest.string "same seed, same summary" (summary_fingerprint a)
    (summary_fingerprint b);
  let c = Fuzz.run { cfg with Fuzz.domains = 3 } in
  check Alcotest.string "domain split does not change the summary"
    (summary_fingerprint a) (summary_fingerprint c)

let test_head_is_clean () =
  (* the standing claim of this harness: checker and simulators agree on
     every generated case — a regression in either side shows up here *)
  let s = Fuzz.run { Fuzz.default_config with trials = 150; seed = 2026 } in
  check Alcotest.int "no disagreements at head" 0 (List.length s.Fuzz.findings);
  check Alcotest.int "no refuted witnesses" 0 s.Fuzz.refuted;
  check Alcotest.bool "both verdict classes exercised" true
    (s.Fuzz.free > 0 && s.Fuzz.deadlock > 0)

(* ---------------- the harness catches a planted bug ---------------- *)

(* A checker that certifies freedom whenever the real checker finds a
   deadlock: every deadlock-possible case becomes a disagreement the
   stress schedules must expose. *)
let lying_check net algo =
  let report = Checker.check net algo in
  match report.Checker.verdict with
  | Checker.Deadlock_possible _ ->
    { report with Checker.verdict = Checker.Deadlock_free Checker.Acyclic_bwg }
  | _ -> report

let test_planted_bug_caught_and_shrunk () =
  let cfg = { Fuzz.default_config with trials = 25; seed = 5 } in
  let s = Fuzz.run ~check:lying_check cfg in
  check Alcotest.bool "planted bug found" true (s.Fuzz.findings <> []);
  let f = List.hd s.Fuzz.findings in
  (match f.Fuzz.kind with
  | Oracle.Certified_free_but_deadlocked _ -> ()
  | Oracle.Witness_refuted -> Alcotest.fail "wrong disagreement kind");
  (* the shrunk case must still be a genuine deadlock ... *)
  let net, algo = Case.to_net_algo f.Fuzz.case in
  (match Checker.verdict net algo with
  | Checker.Deadlock_possible _ -> ()
  | v ->
    Alcotest.failf "shrunk case is not a deadlock: %a"
      (Checker.pp_verdict net) v);
  (* ... smaller than anything the generator emits whole ... *)
  check Alcotest.bool "shrinking made progress" true
    (Array.length f.Fuzz.case.Case.channels <= 8);
  (* ... and its printed spec must recompile to the same verdict *)
  match f.Fuzz.spec with
  | Error msg -> Alcotest.failf "shrunk case unprintable: %s" msg
  | Ok text -> (
    match Dfr_spec.Spec.compile_string text with
    | Error e ->
      Alcotest.failf "shrunk spec does not recompile: %s"
        (Dfr_spec.Spec.error_to_string e)
    | Ok spec -> (
      match
        Checker.verdict spec.Dfr_spec.Spec.net spec.Dfr_spec.Spec.algo
      with
      | Checker.Deadlock_possible _ -> ()
      | v ->
        Alcotest.failf "recompiled spec lost the deadlock: %a"
          (Checker.pp_verdict spec.Dfr_spec.Spec.net) v))

(* ---------------- printer round-trip ---------------- *)

let verdict_class v = Checker.is_deadlock_free v

let test_printer_roundtrip () =
  (* generated cases cover wormhole and SAF/VCT switching, specific and
     any waiting, regular and irregular shapes.  The canonical reprint
     preserves buffer order, so the contract is stronger than agreeing
     on deadlock freedom: the whole verdict — proof structure, witness
     configurations, cycle indices — must be identical (every payload is
     plain integer data, so structural equality is exact), and the
     reprint must be a digest fixpoint (reprinting the reprint changes
     nothing, which is what makes the serve cache content-addressed). *)
  List.iter
    (fun seed ->
      let rng = Dfr_util.Prng.create seed in
      let case = Gen.case rng ~max_nodes:9 in
      let net, algo = Case.to_net_algo case in
      match Dfr_spec.Printer.to_string net algo with
      | Error msg -> Alcotest.failf "seed %d unprintable: %s" seed msg
      | Ok text -> (
        match Dfr_spec.Spec.compile_string text with
        | Error e ->
          Alcotest.failf "seed %d: printed spec does not compile: %s\n%s" seed
            (Dfr_spec.Spec.error_to_string e) text
        | Ok spec ->
          let net' = spec.Dfr_spec.Spec.net and algo' = spec.Dfr_spec.Spec.algo in
          let original = Checker.verdict net algo in
          let reprinted = Checker.verdict net' algo' in
          if original <> reprinted then
            Alcotest.failf
              "seed %d: verdict changed across the round trip:\n  %a\n  %a"
              seed (Checker.pp_verdict net) original (Checker.pp_verdict net')
              reprinted;
          match (Dfr_spec.Printer.digest net algo,
                 Dfr_spec.Printer.digest net' algo') with
          | Ok d, Ok d' ->
            check Alcotest.string
              (Printf.sprintf "seed %d digest fixpoint" seed) d d'
          | Error msg, _ | _, Error msg ->
            Alcotest.failf "seed %d: reprint undigestable: %s" seed msg))
    (List.init 30 (fun i -> 9000 + i))

let test_printer_roundtrip_registry () =
  (* the compiled-in custom network, the one case with parallel links *)
  match Registry.find "duato-incoherent" with
  | None -> ()
  | Some e ->
    let net = Registry.network_for e None in
    (match Dfr_spec.Printer.to_string net e.Registry.algo with
    | Error msg -> Alcotest.failf "incoherent unprintable: %s" msg
    | Ok text -> (
      match Dfr_spec.Spec.compile_string text with
      | Error err ->
        Alcotest.failf "incoherent reprint does not compile: %s"
          (Dfr_spec.Spec.error_to_string err)
      | Ok spec ->
        check
          Alcotest.(option bool)
          "incoherent verdict survives"
          (verdict_class (Checker.verdict net e.Registry.algo))
          (verdict_class
             (Checker.verdict spec.Dfr_spec.Spec.net spec.Dfr_spec.Spec.algo))))

let suite =
  [
    Alcotest.test_case "oracle agrees on the whole catalogue" `Quick
      test_registry_agreement;
    Alcotest.test_case "campaigns are deterministic across domains" `Quick
      test_determinism;
    Alcotest.test_case "150-trial campaign finds no disagreement" `Quick
      test_head_is_clean;
    Alcotest.test_case "planted checker bug is caught and shrunk" `Quick
      test_planted_bug_caught_and_shrunk;
    Alcotest.test_case "printer round-trips 30 generated cases" `Quick
      test_printer_roundtrip;
    Alcotest.test_case "printer round-trips the incoherent example" `Quick
      test_printer_roundtrip_registry;
  ]
