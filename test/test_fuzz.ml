(* Soundness fuzzing: random routing relations cross-validated against the
   simulator.

   Each fuzz case draws a deterministic random sub-relation of minimal
   adaptive routing on a small network (a nonempty subset of the minimal
   channels for every (node, destination) pair, any-wait).  The checker's
   verdict is then confronted with dynamics:

   - Deadlock_free  => saturating stress batches must all complete;
   - Deadlock_possible with a replayable witness => the seated
     configuration must be dynamically stuck;
   - Unknown        => accepted (the procedure is worst-case exponential),
     but counted, and the count must stay small.

   This is the strongest end-to-end consistency check in the suite: it
   exercises reachability, BWG construction, the knot search, cycle
   classification, the reduction search and both simulators against each
   other with no hand-picked structure. *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_sim

let check = Alcotest.check

(* A random sub-relation: for every (node, dest) draw a nonempty subset of
   the minimal (dim, dir, vc) moves.  The table makes it a deterministic
   function, as the paper's model requires. *)
let random_subrelation net seed =
  let topo = Net.topology_exn net in
  let n = Topology.num_nodes topo in
  let vcs = Net.vcs net in
  let rng = Dfr_util.Prng.create seed in
  let table = Hashtbl.create 64 in
  for node = 0 to n - 1 do
    for dest = 0 to n - 1 do
      if node <> dest then begin
        let moves = Topology.minimal_moves topo ~src:node ~dst:dest in
        let all =
          List.concat_map
            (fun (dim, dir) ->
              List.init vcs (fun vc ->
                  Buf.id (Net.channel net ~src:node ~dim ~dir ~vc)))
            moves
        in
        let chosen = List.filter (fun _ -> Dfr_util.Prng.bool rng) all in
        let chosen = if chosen = [] then [ Dfr_util.Prng.pick rng all ] else chosen in
        Hashtbl.replace table (node, dest) chosen
      end
    done
  done;
  Algo.make
    ~name:(Printf.sprintf "fuzz-%d" seed)
    ~wait:Algo.Any_wait
    ~route:(fun _net b ~dest ->
      Option.value (Hashtbl.find_opt table (Buf.head_node b, dest)) ~default:[])
    ()

let stress_traffic topo seed =
  Traffic.batch topo ~pattern:Traffic.Uniform ~count:12 ~length:10 ~seed

let confront net algo ~unknowns =
  let topo = Net.topology_exn net in
  match Checker.verdict net algo with
  | Checker.Deadlock_free _ ->
    List.iter
      (fun seed ->
        match
          Wormhole_sim.run
            ~config:{ Wormhole_sim.default_config with seed; capacity = 2 }
            net algo (stress_traffic topo seed)
        with
        | Wormhole_sim.Completed _ -> ()
        | o ->
          Alcotest.failf "%s certified free but %a" algo.Algo.name
            Wormhole_sim.pp_outcome o)
      [ 1; 2 ]
  | Checker.Deadlock_possible failure -> (
    match Dfr_scenario.Scenario.replay net algo failure with
    | Some confirmed ->
      check Alcotest.bool (algo.Algo.name ^ " witness confirmed") true confirmed
    | None -> ())
  | Checker.Unknown _ -> incr unknowns

let fuzz_network net seeds () =
  let unknowns = ref 0 in
  List.iter (fun seed -> confront net (random_subrelation net seed) ~unknowns) seeds;
  (* the caps may fire occasionally, but never dominate *)
  check Alcotest.bool "few unknowns" true (!unknowns * 4 <= List.length seeds)

let seeds lo hi = List.init (hi - lo + 1) (fun i -> lo + i)

let test_fuzz_cube2 =
  fuzz_network (Net.wormhole (Topology.hypercube 2) ~vcs:2) (seeds 1 25)

let test_fuzz_mesh23 =
  fuzz_network (Net.wormhole (Topology.mesh [| 2; 3 |]) ~vcs:1) (seeds 100 124)

let test_fuzz_mesh33 =
  fuzz_network (Net.wormhole (Topology.mesh [| 3; 3 |]) ~vcs:1) (seeds 200 211)

let test_fuzz_cube3 =
  fuzz_network (Net.wormhole (Topology.hypercube 3) ~vcs:1) (seeds 300 307)

(* The same game for store-and-forward relations. *)
let random_saf_subrelation net seed =
  let topo = Net.topology_exn net in
  let n = Topology.num_nodes topo in
  let classes = Net.vcs net in
  let rng = Dfr_util.Prng.create seed in
  let table = Hashtbl.create 64 in
  for node = 0 to n - 1 do
    for dest = 0 to n - 1 do
      if node <> dest then begin
        let moves = Topology.minimal_moves topo ~src:node ~dst:dest in
        let all =
          List.concat_map
            (fun (dim, dir) ->
              match Topology.neighbor topo node dim dir with
              | None -> []
              | Some v ->
                List.init classes (fun cls ->
                    Buf.id (Net.node_buffer net ~node:v ~cls)))
            moves
        in
        let chosen = List.filter (fun _ -> Dfr_util.Prng.bool rng) all in
        let chosen = if chosen = [] then [ Dfr_util.Prng.pick rng all ] else chosen in
        Hashtbl.replace table (node, dest) chosen
      end
    done
  done;
  Algo.make
    ~name:(Printf.sprintf "fuzz-saf-%d" seed)
    ~wait:Algo.Any_wait
    ~route:(fun net b ~dest ->
      match Buf.kind b with
      | Buf.Injection node ->
        (* enter through the local class-0 buffer *)
        [ Buf.id (Net.node_buffer net ~node ~cls:0) ]
      | _ ->
        Option.value (Hashtbl.find_opt table (Buf.head_node b, dest)) ~default:[])
    ()

let confront_saf net algo ~unknowns =
  let topo = Net.topology_exn net in
  match Checker.verdict net algo with
  | Checker.Deadlock_free _ ->
    List.iter
      (fun seed ->
        match
          Saf_sim.run
            ~config:{ Saf_sim.max_cycles = 100_000; seed }
            net algo
            (Traffic.batch topo ~pattern:Traffic.Uniform ~count:12 ~length:1 ~seed)
        with
        | Saf_sim.Completed _ -> ()
        | o ->
          Alcotest.failf "%s certified free but %a" algo.Algo.name Saf_sim.pp_outcome o)
      [ 1; 2 ]
  | Checker.Deadlock_possible failure -> (
    match Dfr_scenario.Scenario.replay net algo failure with
    | Some confirmed ->
      check Alcotest.bool (algo.Algo.name ^ " witness confirmed") true confirmed
    | None -> ())
  | Checker.Unknown _ -> incr unknowns

let test_fuzz_saf () =
  let net = Net.store_and_forward (Topology.mesh [| 3; 3 |]) ~classes:2 in
  let unknowns = ref 0 in
  List.iter
    (fun seed -> confront_saf net (random_saf_subrelation net seed) ~unknowns)
    (seeds 400 419);
  check Alcotest.bool "few unknowns" true (!unknowns <= 5)

let suite =
  [
    Alcotest.test_case "fuzz wormhole 2-cube (25 relations)" `Quick test_fuzz_cube2;
    Alcotest.test_case "fuzz wormhole 2x3 mesh (25 relations)" `Quick test_fuzz_mesh23;
    Alcotest.test_case "fuzz wormhole 3x3 mesh (12 relations)" `Quick test_fuzz_mesh33;
    Alcotest.test_case "fuzz wormhole 3-cube (8 relations)" `Quick test_fuzz_cube3;
    Alcotest.test_case "fuzz SAF 3x3 mesh (20 relations)" `Quick test_fuzz_saf;
  ]

(* ---------------- specific-wait fuzzing (Theorem 2 path) ---------------- *)

(* Same random sub-relations, but committed waiting: the packet waits on
   one designated buffer (the first candidate).  This drives the checker
   through Theorem 2's classification instead of the Theorem 3 reduction. *)
let random_specific_subrelation net seed =
  let base = random_subrelation net seed in
  {
    base with
    Algo.name = Printf.sprintf "fuzz-specific-%d" seed;
    wait = Algo.Specific_wait;
    waits =
      (fun net' b ~dest ->
        match base.Algo.route net' b ~dest with
        | [] -> []
        | first :: _ -> [ first ]);
  }

let test_fuzz_specific_wait () =
  let net = Net.wormhole (Topology.hypercube 2) ~vcs:2 in
  let unknowns = ref 0 in
  List.iter
    (fun seed -> confront net (random_specific_subrelation net seed) ~unknowns)
    (seeds 500 529);
  check Alcotest.bool "few unknowns" true (!unknowns * 4 <= 30)

(* ---------------- wrap-around (torus) fuzzing ---------------- *)

let test_fuzz_ring () =
  (* random sub-relations on a ring: most deadlock on the wrap cycle,
     a few (those that happen to break it) are certified; all confronted *)
  let net = Net.wormhole (Topology.ring 4) ~vcs:2 in
  let unknowns = ref 0 in
  List.iter
    (fun seed -> confront net (random_subrelation net seed) ~unknowns)
    (seeds 600 624);
  check Alcotest.bool "few unknowns" true (!unknowns * 4 <= 25)

let test_fuzz_torus () =
  let net = Net.wormhole (Topology.torus [| 3; 3 |]) ~vcs:1 in
  let unknowns = ref 0 in
  List.iter
    (fun seed -> confront net (random_subrelation net seed) ~unknowns)
    (seeds 700 711);
  check Alcotest.bool "few unknowns" true (!unknowns <= 3)

let suite =
  suite
  @ [
      Alcotest.test_case "fuzz specific-wait 2-cube (30 relations)" `Quick
        test_fuzz_specific_wait;
      Alcotest.test_case "fuzz ring (25 relations)" `Quick test_fuzz_ring;
      Alcotest.test_case "fuzz torus 3x3 (12 relations)" `Quick test_fuzz_torus;
    ]
