(* The scenario subsystem: fault-plan parsing, degradation, outcome
   classification, latency bounds — and the acceptance bar, which is byte
   equality: a campaign's JSON must not depend on the checking path
   (one incremental session vs a cold check per fault, including the
   node-kill rebuild fallback) or on the domain count. *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core
module Fault = Dfr_scenario.Fault
module Degrade = Dfr_scenario.Degrade
module Scenario = Dfr_scenario.Scenario
module Latency = Dfr_scenario.Latency
module Traffic = Dfr_sim.Traffic
module Wormhole_sim = Dfr_sim.Wormhole_sim
module Stats = Dfr_sim.Stats
module J = Dfr_util.Json

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let instance name topo =
  let e =
    match Registry.find name with
    | Some e -> e
    | None -> Alcotest.fail ("unregistered: " ^ name)
  in
  let t =
    match Topology.of_string topo with
    | Ok t -> Some t
    | Error m -> Alcotest.fail m
  in
  (Registry.network_for e t, e.Registry.algo)

let run ?domains ?cold ~mode net algo plan =
  match Scenario.campaign ?domains ?cold ~mode net algo plan with
  | Ok c -> c
  | Error m -> Alcotest.fail ("campaign: " ^ m)

let bytes c = J.to_string (Scenario.campaign_to_json c)

(* ---------------- plan parsing ---------------- *)

let test_plan_parse () =
  let txt =
    "# comment\n\
     plan \"demo\"\n\
     seed 9\n\
     kill link 0 -> 1 vc 1\n\
     at 5 kill buffer 3\n\
     kill node 2\n\
     storm links 4 seed 11\n"
  in
  match Fault.parse txt with
  | Error m -> Alcotest.fail m
  | Ok p ->
    check Alcotest.(option string) "name" (Some "demo") p.Fault.name;
    check Alcotest.int "seed" 9 p.Fault.seed;
    check Alcotest.(list int) "default ticks follow the previous step"
      [ 0; 5; 6; 7 ]
      (List.map (fun (s : Fault.step) -> s.Fault.at) p.Fault.steps);
    (match List.map (fun (s : Fault.step) -> s.Fault.fault) p.Fault.steps with
    | [
     Fault.Kill_link { src = 0; dst = 1; vc = Some 1 };
     Fault.Kill_buffer 3;
     Fault.Kill_node 2;
     Fault.Storm { count = 4; seed = Some 11 };
    ] ->
      ()
    | _ -> Alcotest.fail "parsed faults differ")

let test_plan_parse_errors () =
  let expect_error_line n txt =
    match Fault.parse txt with
    | Ok _ -> Alcotest.failf "accepted %S" txt
    | Error m ->
      let tag = Printf.sprintf "line %d" n in
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool
        (Printf.sprintf "%S names %s" m tag)
        true (contains m tag)
  in
  expect_error_line 1 "bogus directive\n";
  expect_error_line 2 "seed 1\nkill link 0 1\n";
  expect_error_line 3 "plan \"x\"\nseed 2\nstorm links zero\n"

(* runtest's cwd is _build/default/test; a direct exec runs from the root *)
let plans_dir =
  let from_test = Filename.concat ".." "examples/plans" in
  if Sys.file_exists from_test then from_test else "examples/plans"

let test_plan_corpus () =
  let plans = Sys.readdir plans_dir in
  Array.sort compare plans;
  let loaded =
    Array.to_list plans
    |> List.filter (fun f -> Filename.check_suffix f ".plan")
    |> List.map (fun f ->
           match Fault.load_file (Filename.concat plans_dir f) with
           | Ok p -> Option.value p.Fault.name ~default:"<unnamed>"
           | Error m -> Alcotest.fail (f ^ ": " ^ m))
  in
  check
    Alcotest.(list string)
    "golden corpus parses"
    [ "dragonfly-storm"; "mesh-link-cut"; "node-failure" ]
    loaded

let test_storm_expand () =
  let net, _ = instance "dimension-order" "mesh:3x3" in
  let plan =
    {
      Fault.name = None;
      seed = 5;
      steps = [ { Fault.at = 0; fault = Fault.Storm { count = 6; seed = None } } ];
    }
  in
  let expand () =
    match Fault.expand plan net with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let a = expand () and b = expand () in
  check Alcotest.bool "expansion is deterministic" true (a = b);
  check Alcotest.int "count respected" 6 (List.length a);
  let ids =
    List.map
      (fun (s : Fault.step) ->
        match s.Fault.fault with
        | Fault.Kill_buffer b -> b
        | _ -> Alcotest.fail "storm expands to buffer kills")
      a
  in
  check Alcotest.int "distinct buffers" 6
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun b ->
      check Alcotest.bool "kills transit buffers only" true
        (Buf.is_transit (Net.buffer net b)))
    ids;
  (match
     Fault.expand
       { plan with
         Fault.steps =
           [ { Fault.at = 0; fault = Fault.Storm { count = 10_000; seed = None } } ]
       }
       net
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized storm accepted")

(* ---------------- campaign byte-identity ---------------- *)

let link_plan =
  {
    Fault.name = Some "links";
    seed = 1;
    steps =
      [
        { Fault.at = 0; fault = Fault.Kill_link { src = 0; dst = 1; vc = None } };
        { Fault.at = 1; fault = Fault.Kill_link { src = 4; dst = 5; vc = None } };
      ];
  }

let test_campaign_bytes_across_paths () =
  let net, algo = instance "dimension-order" "mesh:3x3" in
  List.iter
    (fun mode ->
      let base = bytes (run ~mode net algo link_plan) in
      check Alcotest.string "cold = incremental" base
        (bytes (run ~cold:true ~mode net algo link_plan));
      (* satellite: the stuck/wait-connectivity scans chunk over the
         domain pool; the merged lists — hence the bytes — must not move *)
      check Alcotest.string "domains 4 = domains 1" base
        (bytes (run ~domains:4 ~mode net algo link_plan)))
    [ `Sweep; `Sequence ]

let test_campaign_modes_differ () =
  let net, algo = instance "dimension-order" "mesh:3x3" in
  let sweep = run ~mode:`Sweep net algo link_plan in
  let seq = run ~mode:`Sequence net algo link_plan in
  (* sweep checks each fault alone; the sequence accumulates them *)
  check Alcotest.int "sweep outcomes" 2 (List.length sweep.Scenario.outcomes);
  check Alcotest.int "sequence outcomes" 2 (List.length seq.Scenario.outcomes);
  let killed o = List.length o.Scenario.killed in
  let last c = List.nth c.Scenario.outcomes 1 in
  check Alcotest.int "sweep's last outcome kills one link" 1
    (killed (last sweep));
  check Alcotest.int "sequence's last outcome carries both" 2
    (killed (last seq))

(* ---------------- classification ---------------- *)

let test_classify_disconnection () =
  let net, algo = instance "dimension-order" "mesh:3x3" in
  let plan =
    {
      Fault.name = None;
      seed = 1;
      steps =
        [ { Fault.at = 0; fault = Fault.Kill_link { src = 0; dst = 1; vc = None } } ];
    }
  in
  let c = run ~mode:`Sweep net algo plan in
  check Alcotest.int "baseline free" 0 c.Scenario.baseline_exit;
  match c.Scenario.outcomes with
  | [ o ] -> (
    check Alcotest.int "fault deadlocks" 1 o.Scenario.exit_code;
    match o.Scenario.classification with
    | Scenario.Disconnected pairs ->
      check Alcotest.bool "some destination cut" true (pairs <> []);
      (* XY routing: node 0's only route to node 1 is the killed link *)
      let srcs_for_1 = try List.assoc 1 pairs with Not_found -> [] in
      check Alcotest.bool "dest 1 lost source 0" true (List.mem 0 srcs_for_1);
      List.iter
        (fun (dest, srcs) ->
          check Alcotest.bool "pairs are populated" true
            (srcs <> [] && dest >= 0 && dest < 9))
        pairs
    | _ -> Alcotest.fail "expected a Disconnected classification")
  | _ -> Alcotest.fail "one outcome expected"

let test_classify_node_kill () =
  let net, algo = instance "dimension-order" "mesh:3x3" in
  let plan =
    {
      Fault.name = None;
      seed = 1;
      steps = [ { Fault.at = 0; fault = Fault.Kill_node 4 } ];
    }
  in
  let c = run ~mode:`Sweep net algo plan in
  (match c.Scenario.outcomes with
  | [ o ] -> (
    match o.Scenario.classification with
    | Scenario.Disconnected pairs ->
      (* the dead node is unreachable for everyone; the centre of a 3x3
         mesh also carries every cross route *)
      let srcs_for_4 = try List.assoc 4 pairs with Not_found -> [] in
      check Alcotest.int "dead node cut from all 8 others" 8
        (List.length srcs_for_4)
    | _ -> Alcotest.fail "expected a Disconnected classification")
  | _ -> Alcotest.fail "one outcome expected");
  (* the rebuild fallback must agree with a cold campaign byte-for-byte *)
  check Alcotest.string "rebuilt = cold" (bytes c)
    (bytes (run ~cold:true ~mode:`Sweep net algo plan))

(* ---------------- the satellite-4 property ---------------- *)

(* Random plans mixing every fault kind (including node kills, which
   abandon the session for a cold rebuild) re-check byte-identically to
   cold checks of the degraded instance, in both modes. *)
let prop_campaign_bytes =
  QCheck.Test.make ~name:"fault campaigns are bit-for-bit cold" ~count:15
    QCheck.small_nat (fun salt ->
      let net, algo = instance "dimension-order" "mesh:3x3" in
      let rng = Dfr_util.Prng.create (salt * 7919 + 13) in
      let channels =
        Array.of_list
          (List.filter
             (fun b -> Buf.is_transit b)
             (Array.to_list (Net.buffers net)))
      in
      let random_fault () =
        match Dfr_util.Prng.int rng 4 with
        | 0 ->
          let b = channels.(Dfr_util.Prng.int rng (Array.length channels)) in
          Fault.Kill_link
            { src = Buf.source_node b; dst = Buf.head_node b; vc = None }
        | 1 ->
          Fault.Kill_buffer
            (Buf.id channels.(Dfr_util.Prng.int rng (Array.length channels)))
        | 2 -> Fault.Kill_node (Dfr_util.Prng.int rng (Net.num_nodes net))
        | _ -> Fault.Storm { count = 1 + Dfr_util.Prng.int rng 3; seed = None }
      in
      let steps =
        List.init
          (1 + Dfr_util.Prng.int rng 3)
          (fun i -> { Fault.at = i; fault = random_fault () })
      in
      let plan = { Fault.name = None; seed = salt + 1; steps } in
      List.for_all
        (fun mode ->
          bytes (run ~mode net algo plan)
          = bytes (run ~cold:true ~mode net algo plan))
        [ `Sweep; `Sequence ])

(* ---------------- latency bounds ---------------- *)

let test_latency_sound () =
  let net, algo = instance "dimension-order" "mesh:3x3" in
  let topo =
    match Net.topology net with Some t -> t | None -> Alcotest.fail "topology"
  in
  let traffic =
    Traffic.bursty topo ~pattern:Traffic.Uniform ~burst:3 ~rate:0.05 ~length:3
      ~horizon:200 ~seed:5
  in
  let report = Checker.check net algo in
  let b = Latency.analyze report.Checker.space report.Checker.bwg traffic in
  check Alcotest.bool "bounds defined" true b.Latency.defined;
  check Alcotest.int "every packet bounded" (Traffic.count traffic)
    b.Latency.packets;
  check Alcotest.bool "percentiles ordered" true
    (b.Latency.p50 <= b.Latency.p99 && b.Latency.p99 <= b.Latency.p100);
  match Wormhole_sim.run net algo traffic with
  | Wormhole_sim.Completed stats ->
    let observed = Stats.percentile_latency stats 1.0 in
    check Alcotest.bool "analytic p100 dominates observed p100" true
      (b.Latency.p100 >= observed)
  | _ -> Alcotest.fail "XY mesh workload must drain"

let test_latency_undefined () =
  let net, algo = instance "dimension-order" "mesh:3x3" in
  let report = Checker.check net algo in
  let self =
    [ { Traffic.src = 0; dst = 0; length = 2; inject_at = 0; mode = Traffic.Adaptive } ]
  in
  let b = Latency.analyze report.Checker.space report.Checker.bwg self in
  check Alcotest.bool "src = dst is undefined" false b.Latency.defined;
  check Alcotest.bool "with a reason" true (b.Latency.reason <> None);
  let empty = Latency.analyze report.Checker.space report.Checker.bwg [] in
  check Alcotest.bool "empty workload is defined" true empty.Latency.defined;
  check Alcotest.int "zero packets" 0 empty.Latency.packets

(* ---------------- adversarial generators ---------------- *)

let test_traffic_validation () =
  let _, _ = instance "dimension-order" "mesh:3x3" in
  let topo =
    match Topology.of_string "mesh:3x3" with Ok t -> t | Error m -> Alcotest.fail m
  in
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check Alcotest.bool "storm with no destinations" true
    (raises (fun () ->
         Traffic.storm topo ~dests:[] ~rate:0.1 ~length:2 ~horizon:10 ~seed:1));
  check Alcotest.bool "storm aimed outside the network" true
    (raises (fun () ->
         Traffic.storm topo ~dests:[ 99 ] ~rate:0.1 ~length:2 ~horizon:10 ~seed:1));
  check Alcotest.bool "zero-length packets" true
    (raises (fun () ->
         Traffic.bursty topo ~pattern:Traffic.Uniform ~burst:2 ~rate:0.1
           ~length:0 ~horizon:10 ~seed:1));
  check Alcotest.bool "zero-depth burst" true
    (raises (fun () ->
         Traffic.bursty topo ~pattern:Traffic.Uniform ~burst:0 ~rate:0.1
           ~length:2 ~horizon:10 ~seed:1))

let test_seeking_traffic () =
  let net, algo = instance "efa-relaxed" "hypercube:2" in
  let report = Checker.check net algo in
  match report.Checker.verdict with
  | Checker.Deadlock_possible failure -> (
    match Scenario.seeking_traffic report.Checker.space ~length:3 failure with
    | Some packets ->
      check Alcotest.bool "non-empty workload" true (packets <> []);
      List.iter
        (fun (p : Traffic.packet) ->
          match p.Traffic.mode with
          | Traffic.Scripted (b :: _) ->
            check Alcotest.int "chain starts at the packet's source"
              p.Traffic.src
              (Buf.source_node (Net.buffer net b))
          | _ -> Alcotest.fail "seeking packets are scripted")
        packets
    | None -> Alcotest.fail "a true-cycle witness must yield traffic")
  | _ -> Alcotest.fail "efa-relaxed must deadlock"

let suite =
  [
    Alcotest.test_case "plan: directives, ticks and seeds parse" `Quick
      test_plan_parse;
    Alcotest.test_case "plan: errors carry line numbers" `Quick
      test_plan_parse_errors;
    Alcotest.test_case "plan: the golden corpus parses" `Quick test_plan_corpus;
    Alcotest.test_case "plan: storm expansion is seeded and distinct" `Quick
      test_storm_expand;
    Alcotest.test_case "campaign: bytes survive cold and domain changes"
      `Quick test_campaign_bytes_across_paths;
    Alcotest.test_case "campaign: sweep isolates, sequence accumulates" `Quick
      test_campaign_modes_differ;
    Alcotest.test_case "classify: a severed XY link reports its sources"
      `Quick test_classify_disconnection;
    Alcotest.test_case "classify: a node kill rebuilds and reports" `Quick
      test_classify_node_kill;
    qtest prop_campaign_bytes;
    Alcotest.test_case "latency: analytic p100 dominates the simulator" `Quick
      test_latency_sound;
    Alcotest.test_case "latency: degenerate workloads refuse to guess" `Quick
      test_latency_undefined;
    Alcotest.test_case "traffic: generators reject unusable arguments" `Quick
      test_traffic_validation;
    Alcotest.test_case "traffic: witness-seeking workloads are scripted"
      `Quick test_seeking_traffic;
  ]
