(* Unit and property tests for dfr_util: combinatorics, bitsets, PRNG. *)

open Dfr_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- combinatorics ---------------- *)

let test_factorial_values () =
  check Alcotest.int "0!" 1 (Combinatorics.factorial 0);
  check Alcotest.int "1!" 1 (Combinatorics.factorial 1);
  check Alcotest.int "5!" 120 (Combinatorics.factorial 5);
  check Alcotest.int "12!" 479001600 (Combinatorics.factorial 12)

let test_factorial_errors () =
  Alcotest.check_raises "negative" (Invalid_argument "Combinatorics.factorial: negative")
    (fun () -> ignore (Combinatorics.factorial (-1)));
  Alcotest.check_raises "overflow" (Invalid_argument "Combinatorics.factorial: overflow")
    (fun () -> ignore (Combinatorics.factorial 21))

let test_binomial_values () =
  check Alcotest.int "C(4,2)" 6 (Combinatorics.binomial 4 2);
  check Alcotest.int "C(12,6)" 924 (Combinatorics.binomial 12 6);
  check Alcotest.int "C(5,0)" 1 (Combinatorics.binomial 5 0);
  check Alcotest.int "C(5,5)" 1 (Combinatorics.binomial 5 5);
  check Alcotest.int "C(5,6)" 0 (Combinatorics.binomial 5 6);
  check Alcotest.int "C(5,-1)" 0 (Combinatorics.binomial 5 (-1))

let prop_pascal =
  QCheck.Test.make ~name:"binomial satisfies Pascal's rule" ~count:200
    QCheck.(pair (int_range 1 20) (int_range 0 20))
    (fun (n, k) ->
      Combinatorics.binomial n k
      = Combinatorics.binomial (n - 1) k + Combinatorics.binomial (n - 1) (k - 1))

let prop_binomial_row_sum =
  QCheck.Test.make ~name:"binomial row sums to 2^n" ~count:50
    QCheck.(int_range 0 20)
    (fun n ->
      let sum = ref 0 in
      for k = 0 to n do
        sum := !sum + Combinatorics.binomial n k
      done;
      !sum = Combinatorics.pow2 n)

let test_pow2 () =
  check Alcotest.int "2^0" 1 (Combinatorics.pow2 0);
  check Alcotest.int "2^12" 4096 (Combinatorics.pow2 12)

let test_falling () =
  check Alcotest.int "falling 5 2" 20 (Combinatorics.falling 5 2);
  check Alcotest.int "falling 5 0" 1 (Combinatorics.falling 5 0);
  check Alcotest.int "falling 5 5 = 5!" 120 (Combinatorics.falling 5 5)

let test_permutations () =
  check Alcotest.int "3 elements" 6 (List.length (Combinatorics.permutations [ 1; 2; 3 ]));
  check Alcotest.int "empty" 1 (List.length (Combinatorics.permutations []));
  let perms = Combinatorics.permutations [ 1; 2; 3; 4 ] in
  check Alcotest.int "4 elements distinct" 24
    (List.length (List.sort_uniq compare perms))

let test_subsets () =
  check Alcotest.int "4 elements" 16 (List.length (Combinatorics.subsets [ 1; 2; 3; 4 ]))

(* ---------------- bitsets ---------------- *)

let test_bitset_basic () =
  let s = Bitset.of_list [ 3; 1; 7 ] in
  check Alcotest.bool "mem 3" true (Bitset.mem 3 s);
  check Alcotest.bool "mem 2" false (Bitset.mem 2 s);
  check Alcotest.int "cardinal" 3 (Bitset.cardinal s);
  check Alcotest.int "min" 1 (Bitset.min_elt s);
  check Alcotest.int "max" 7 (Bitset.max_elt s);
  check (Alcotest.list Alcotest.int) "elements sorted" [ 1; 3; 7 ] (Bitset.elements s)

let test_bitset_empty () =
  check Alcotest.bool "is_empty" true (Bitset.is_empty Bitset.empty);
  Alcotest.check_raises "min of empty" Not_found (fun () ->
      ignore (Bitset.min_elt Bitset.empty))

let test_bitset_full () =
  check Alcotest.int "full 5 cardinal" 5 (Bitset.cardinal (Bitset.full 5));
  check (Alcotest.list Alcotest.int) "full 3" [ 0; 1; 2 ] (Bitset.elements (Bitset.full 3))

let test_bitset_subsets () =
  let subs = Bitset.subsets (Bitset.of_list [ 0; 2; 5 ]) in
  check Alcotest.int "count" 8 (List.length subs);
  check Alcotest.int "distinct" 8 (List.length (List.sort_uniq compare subs));
  List.iter
    (fun sub ->
      check Alcotest.int "is subset" sub (Bitset.inter sub (Bitset.of_list [ 0; 2; 5 ])))
    subs

let prop_bitset_add_remove =
  QCheck.Test.make ~name:"add then remove restores" ~count:200
    QCheck.(pair (int_range 0 61) (int_range 0 (1 lsl 20)))
    (fun (i, s) ->
      let s = Bitset.remove i s in
      Bitset.remove i (Bitset.add i s) = s)

let prop_bitset_union_cardinal =
  QCheck.Test.make ~name:"|a| + |b| = |a∪b| + |a∩b|" ~count:200
    QCheck.(pair (int_range 0 (1 lsl 16)) (int_range 0 (1 lsl 16)))
    (fun (a, b) ->
      Bitset.cardinal a + Bitset.cardinal b
      = Bitset.cardinal (Bitset.union a b) + Bitset.cardinal (Bitset.inter a b))

let prop_bitset_fold_ascending =
  QCheck.Test.make ~name:"fold visits ascending" ~count:200
    QCheck.(int_range 0 (1 lsl 18))
    (fun s ->
      let xs = List.rev (Bitset.fold (fun i acc -> i :: acc) s []) in
      xs = List.sort compare xs)

(* ---------------- dense bitsets ---------------- *)

let test_dense_basic () =
  let s = Bitset.Dense.create 100 in
  check Alcotest.int "length" 100 (Bitset.Dense.length s);
  check Alcotest.int "empty cardinal" 0 (Bitset.Dense.cardinal s);
  List.iter (Bitset.Dense.add s) [ 0; 61; 62; 99 ];
  (* straddles the 62-bit word boundary *)
  check Alcotest.bool "mem 62" true (Bitset.Dense.mem s 62);
  check Alcotest.bool "not mem 63" false (Bitset.Dense.mem s 63);
  check (Alcotest.list Alcotest.int) "elements ascending" [ 0; 61; 62; 99 ]
    (Bitset.Dense.elements s);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset.Dense: element out of range") (fun () ->
      Bitset.Dense.add s 100)

let test_dense_union () =
  let a = Bitset.Dense.create 70 and b = Bitset.Dense.create 70 in
  List.iter (Bitset.Dense.add a) [ 1; 65 ];
  List.iter (Bitset.Dense.add b) [ 2; 65; 69 ];
  Bitset.Dense.union_into ~into:a b;
  check (Alcotest.list Alcotest.int) "union" [ 1; 2; 65; 69 ]
    (Bitset.Dense.elements a);
  check (Alcotest.list Alcotest.int) "src untouched" [ 2; 65; 69 ]
    (Bitset.Dense.elements b)

let prop_dense_matches_list_set =
  QCheck.Test.make ~name:"Dense agrees with a reference set" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 60) (int_range 0 199))
    (fun xs ->
      let s = Bitset.Dense.create 200 in
      List.iter (Bitset.Dense.add s) xs;
      let ref_set = List.sort_uniq compare xs in
      Bitset.Dense.elements s = ref_set
      && Bitset.Dense.cardinal s = List.length ref_set
      && List.for_all (Bitset.Dense.mem s) ref_set)

let test_matrix_rows_independent () =
  let m = Bitset.Dense.Matrix.create ~rows:3 ~len:70 in
  check Alcotest.int "rows" 3 (Bitset.Dense.Matrix.rows m);
  check Alcotest.int "length" 70 (Bitset.Dense.Matrix.length m);
  Bitset.Dense.Matrix.add m 0 5;
  Bitset.Dense.Matrix.add m 2 5;
  Bitset.Dense.Matrix.add m 2 65;
  check Alcotest.bool "row 0 has 5" true (Bitset.Dense.Matrix.mem m 0 5);
  check Alcotest.bool "row 1 clear" false (Bitset.Dense.Matrix.mem m 1 5);
  check Alcotest.bool "row 2 has 65" true (Bitset.Dense.Matrix.mem m 2 65)

let test_matrix_union_iter () =
  let m = Bitset.Dense.Matrix.create ~rows:2 ~len:130 in
  List.iter (Bitset.Dense.Matrix.add m 0) [ 0; 63 ];
  List.iter (Bitset.Dense.Matrix.add m 1) [ 63; 129 ];
  Bitset.Dense.Matrix.union_rows m ~into:0 ~src:1;
  let row r =
    let acc = ref [] in
    Bitset.Dense.Matrix.iter_row (fun i -> acc := i :: !acc) m r;
    List.rev !acc
  in
  check (Alcotest.list Alcotest.int) "union ascending" [ 0; 63; 129 ] (row 0);
  check (Alcotest.list Alcotest.int) "src untouched" [ 63; 129 ] (row 1)

let prop_matrix_matches_dense =
  QCheck.Test.make ~name:"Matrix rows behave like independent Dense sets"
    ~count:200
    QCheck.(
      list_of_size (Gen.int_range 0 80)
        (pair (int_range 0 3) (int_range 0 149)))
    (fun adds ->
      let m = Bitset.Dense.Matrix.create ~rows:4 ~len:150 in
      let refs = Array.init 4 (fun _ -> Bitset.Dense.create 150) in
      List.iter
        (fun (r, i) ->
          Bitset.Dense.Matrix.add m r i;
          Bitset.Dense.add refs.(r) i)
        adds;
      let row r =
        let acc = ref [] in
        Bitset.Dense.Matrix.iter_row (fun i -> acc := i :: !acc) m r;
        List.rev !acc
      in
      List.for_all
        (fun r -> row r = Bitset.Dense.elements refs.(r))
        [ 0; 1; 2; 3 ])

(* ---------------- hybrid sparse/dense rows ---------------- *)

let hybrid_row t r =
  List.rev (Bitset.Hybrid.Rows.fold_row (fun i acc -> i :: acc) t r [])

let test_hybrid_promotion () =
  let len = 620 (* 10 words *) in
  let s = Bitset.Hybrid.create len in
  (* stays sparse while card + 1 <= word count *)
  List.iter (Bitset.Hybrid.add s) [ 0; 62; 124; 186; 248; 310; 372; 434; 496 ];
  check Alcotest.bool "9 of 620 still sparse" false (Bitset.Hybrid.is_dense s);
  List.iter (Bitset.Hybrid.add s) [ 558; 610; 611 ];
  check Alcotest.bool "12 of 620 promoted" true (Bitset.Hybrid.is_dense s);
  check Alcotest.int "cardinal across promotion" 12 (Bitset.Hybrid.cardinal s);
  check (Alcotest.list Alcotest.int) "elements ascending"
    [ 0; 62; 124; 186; 248; 310; 372; 434; 496; 558; 610; 611 ]
    (Bitset.Hybrid.elements s);
  (* a forced-dense container starts dense and reports more storage for
     sparse content *)
  let h = Bitset.Hybrid.Rows.create ~rows:4 ~len () in
  let d = Bitset.Hybrid.Rows.create ~force_dense:true ~rows:4 ~len () in
  check Alcotest.bool "forced flag" true (Bitset.Hybrid.Rows.is_forced_dense d);
  Bitset.Hybrid.Rows.add h 1 3;
  Bitset.Hybrid.Rows.add d 1 3;
  check Alcotest.int "no sparse row promoted" 0 (Bitset.Hybrid.Rows.dense_rows h);
  check Alcotest.int "all forced rows dense" 4 (Bitset.Hybrid.Rows.dense_rows d);
  check Alcotest.bool "sparse stores fewer words" true
    (Bitset.Hybrid.Rows.storage_words h < Bitset.Hybrid.Rows.storage_words d)

(* The differential pin for the closure container: an arbitrary add/union
   program gives identical sets under the hybrid representation, the
   forced-dense escape hatch and a sorted-list reference model — element
   order, cardinals and membership all agree, across promotions. *)
let prop_hybrid_rows_differential =
  let rows = 6 and len = 300 in
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun r i -> `Add (r, i)) (int_range 0 (rows - 1)) (int_range 0 (len - 1));
          map2 (fun a b -> `Union (a, b)) (int_range 0 (rows - 1)) (int_range 0 (rows - 1));
        ])
  in
  QCheck.Test.make ~name:"hybrid rows = forced-dense = reference" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 150) op_gen))
    (fun ops ->
      let h = Bitset.Hybrid.Rows.create ~rows ~len () in
      let d = Bitset.Hybrid.Rows.create ~force_dense:true ~rows ~len () in
      let reference = Array.make rows [] in
      List.iter
        (function
          | `Add (r, i) ->
            Bitset.Hybrid.Rows.add h r i;
            Bitset.Hybrid.Rows.add d r i;
            reference.(r) <- List.sort_uniq compare (i :: reference.(r))
          | `Union (a, b) ->
            Bitset.Hybrid.Rows.union_rows h ~into:a ~src:b;
            Bitset.Hybrid.Rows.union_rows d ~into:a ~src:b;
            if a <> b then
              reference.(a) <- List.sort_uniq compare (reference.(b) @ reference.(a)))
        ops;
      List.for_all
        (fun r ->
          hybrid_row h r = reference.(r)
          && hybrid_row d r = reference.(r)
          && Bitset.Hybrid.Rows.cardinal_row h r = List.length reference.(r)
          && List.for_all
               (fun i ->
                 Bitset.Hybrid.Rows.mem h r i = List.mem i reference.(r))
               [ 0; 1; len / 2; len - 1 ])
        (List.init rows Fun.id))

(* ---------------- prng ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let xs g = List.init 20 (fun _ -> Prng.int g 1000) in
  check (Alcotest.list Alcotest.int) "same seed same stream" (xs a) (xs b)

let test_prng_split_independent () =
  let g = Prng.create 7 in
  let child = Prng.split g in
  (* drawing from the child must not change the parent's future *)
  let g2 = Prng.create 7 in
  let _ = Prng.split g2 in
  let _ = List.init 100 (fun _ -> Prng.int child 10) in
  check Alcotest.int "parent unaffected by child draws" (Prng.int g2 1000000)
    (Prng.int g 1000000)

let prop_prng_int_bounds =
  QCheck.Test.make ~name:"int g b in [0, b)" ~count:500
    QCheck.(pair (int_range 1 1000) int)
    (fun (bound, seed) ->
      let g = Prng.create seed in
      let x = Prng.int g bound in
      x >= 0 && x < bound)

let prop_prng_float_bounds =
  QCheck.Test.make ~name:"float g b in [0, b)" ~count:500 QCheck.int (fun seed ->
      let g = Prng.create seed in
      let x = Prng.float g 3.0 in
      x >= 0.0 && x < 3.0)

let test_prng_shuffle_permutes () =
  let g = Prng.create 11 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "multiset preserved" (Array.init 50 Fun.id) sorted

let test_prng_pick () =
  let g = Prng.create 3 in
  for _ = 1 to 50 do
    let x = Prng.pick g [ 1; 2; 3 ] in
    check Alcotest.bool "member" true (List.mem x [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty list") (fun () ->
      ignore (Prng.pick g []))

let test_prng_bernoulli_extremes () =
  let g = Prng.create 9 in
  for _ = 1 to 50 do
    check Alcotest.bool "p=1" true (Prng.bernoulli g 1.0);
    check Alcotest.bool "p=0" false (Prng.bernoulli g 0.0)
  done

let suite =
  [
    Alcotest.test_case "factorial values" `Quick test_factorial_values;
    Alcotest.test_case "factorial errors" `Quick test_factorial_errors;
    Alcotest.test_case "binomial values" `Quick test_binomial_values;
    Alcotest.test_case "pow2" `Quick test_pow2;
    Alcotest.test_case "falling factorial" `Quick test_falling;
    Alcotest.test_case "permutations" `Quick test_permutations;
    Alcotest.test_case "subsets" `Quick test_subsets;
    Alcotest.test_case "bitset basics" `Quick test_bitset_basic;
    Alcotest.test_case "bitset empty" `Quick test_bitset_empty;
    Alcotest.test_case "bitset full" `Quick test_bitset_full;
    Alcotest.test_case "bitset subsets" `Quick test_bitset_subsets;
    Alcotest.test_case "dense basics" `Quick test_dense_basic;
    Alcotest.test_case "dense union" `Quick test_dense_union;
    Alcotest.test_case "matrix rows independent" `Quick test_matrix_rows_independent;
    Alcotest.test_case "matrix union/iter" `Quick test_matrix_union_iter;
    Alcotest.test_case "hybrid promotion and storage" `Quick test_hybrid_promotion;
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng split independence" `Quick test_prng_split_independent;
    Alcotest.test_case "prng shuffle permutes" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "prng pick" `Quick test_prng_pick;
    Alcotest.test_case "prng bernoulli extremes" `Quick test_prng_bernoulli_extremes;
    qtest prop_pascal;
    qtest prop_binomial_row_sum;
    qtest prop_bitset_add_remove;
    qtest prop_bitset_union_cardinal;
    qtest prop_bitset_fold_ascending;
    qtest prop_dense_matches_list_set;
    qtest prop_matrix_matches_dense;
    qtest prop_hybrid_rows_differential;
    qtest prop_prng_int_bounds;
    qtest prop_prng_float_bounds;
  ]

(* ---------------- json ---------------- *)

let test_json_scalars () =
  check Alcotest.string "null" "null" (Json.to_string Json.Null);
  check Alcotest.string "true" "true" (Json.to_string (Json.Bool true));
  check Alcotest.string "int" "42" (Json.to_string (Json.Int 42));
  check Alcotest.string "float" "2.5" (Json.to_string (Json.Float 2.5));
  check Alcotest.string "integral float" "3.0" (Json.to_string (Json.Float 3.0));
  check Alcotest.string "string" "\"hi\"" (Json.to_string (Json.String "hi"))

let test_json_escaping () =
  check Alcotest.string "quotes" "\"a\\\"b\"" (Json.to_string (Json.String "a\"b"));
  check Alcotest.string "backslash" "\"a\\\\b\"" (Json.to_string (Json.String "a\\b"));
  check Alcotest.string "newline" "\"a\\nb\"" (Json.to_string (Json.String "a\nb"));
  check Alcotest.string "control" "\"\\u0001\"" (Json.to_string (Json.String "\001"))

let test_json_structures () =
  let t = Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]); ("e", Json.List []) ] in
  check Alcotest.string "compact" "{\"xs\":[1,2],\"e\":[]}" (Json.to_string t);
  let pretty = Json.to_string_pretty t in
  check Alcotest.bool "pretty is multiline" true (String.contains pretty '\n')

let suite =
  suite
  @ [
      Alcotest.test_case "json scalars" `Quick test_json_scalars;
      Alcotest.test_case "json escaping" `Quick test_json_escaping;
      Alcotest.test_case "json structures" `Quick test_json_structures;
    ]

(* ---------------- json parsing / round-trip ---------------- *)

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> x = y
  | Json.String x, Json.String y -> x = y
  | Json.List xs, Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Obj xs, Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
         xs ys
  | _ -> false

let test_json_parse_scalars () =
  let ok s = match Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  check Alcotest.bool "null" true (json_equal Json.Null (ok "null"));
  check Alcotest.bool "true" true (json_equal (Json.Bool true) (ok " true "));
  check Alcotest.bool "int" true (json_equal (Json.Int (-42)) (ok "-42"));
  check Alcotest.bool "float" true (json_equal (Json.Float 2.5) (ok "2.5"));
  check Alcotest.bool "string" true (json_equal (Json.String "hi") (ok "\"hi\""))

let test_json_parse_escapes () =
  let ok s = match Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  check Alcotest.bool "escapes" true
    (json_equal (Json.String "a\"b\\c\nd\te")
       (ok "\"a\\\"b\\\\c\\nd\\te\""));
  check Alcotest.bool "unicode control" true
    (json_equal (Json.String "\001") (ok "\"\\u0001\""))

let test_json_parse_errors () =
  let fails s = match Json.of_string s with Ok _ -> false | Error _ -> true in
  check Alcotest.bool "empty" true (fails "");
  check Alcotest.bool "trailing" true (fails "1 2");
  check Alcotest.bool "unterminated" true (fails "\"abc");
  check Alcotest.bool "bad literal" true (fails "nil");
  check Alcotest.bool "open list" true (fails "[1, 2");
  check Alcotest.bool "missing colon" true (fails "{\"a\" 1}")

(* everything the emitter can produce parses back to the same tree, in
   both compact and pretty form *)
let arbitrary_json =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) small_signed_int;
        (* quarters print exactly under both float formats, so equality
           round-trips *)
        map (fun i -> Json.Float (float_of_int i /. 4.0)) small_signed_int;
        map (fun s -> Json.String s) (string_size (int_bound 8) ~gen:printable);
      ]
  in
  let tree =
    fix
      (fun self depth ->
        if depth = 0 then scalar
        else
          frequency
            [
              (2, scalar);
              (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (depth - 1))));
              ( 1,
                map
                  (fun ps -> Json.Obj ps)
                  (list_size (int_bound 4)
                     (pair (string_size (int_bound 6) ~gen:printable) (self (depth - 1))))
              );
            ])
      2
  in
  QCheck.make tree

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json emit/parse round-trip" ~count:200 arbitrary_json
    (fun t ->
      match (Json.of_string (Json.to_string t), Json.of_string (Json.to_string_pretty t)) with
      | Ok a, Ok b -> json_equal t a && json_equal t b
      | _ -> false)

let test_json_nonfinite () =
  (* JSON has no nan/inf tokens; emitting them verbatim made whole reports
     unparseable.  They degrade to null (documented in json.mli). *)
  check Alcotest.string "nan" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "inf" "null" (Json.to_string (Json.Float Float.infinity));
  check Alcotest.string "-inf" "null"
    (Json.to_string (Json.Float Float.neg_infinity));
  check Alcotest.bool "round-trips as Null" true
    (match Json.of_string (Json.to_string (Json.Obj [ ("x", Json.Float Float.nan) ])) with
    | Ok (Json.Obj [ ("x", Json.Null) ]) -> true
    | _ -> false)

let test_json_surrogate_pairs () =
  let ok s =
    match Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  (* U+1F600 and U+1D11E, i.e. code points above the BMP, arrive as UTF-16
     surrogate pairs and must come out as one 4-byte UTF-8 scalar *)
  check Alcotest.bool "emoji pair" true
    (json_equal (Json.String "\xf0\x9f\x98\x80") (ok "\"\\ud83d\\ude00\""));
  check Alcotest.bool "clef pair" true
    (json_equal (Json.String "\xf0\x9d\x84\x9e") (ok "\"\\ud834\\udd1e\""));
  let fails s = match Json.of_string s with Ok _ -> false | Error _ -> true in
  check Alcotest.bool "lone high surrogate" true (fails "\"\\ud83d\"");
  check Alcotest.bool "lone low surrogate" true (fails "\"\\ude00\"");
  check Alcotest.bool "high then non-surrogate escape" true
    (fails "\"\\ud83d\\u0041\"");
  check Alcotest.bool "high then plain char" true (fails "\"\\ud83dx\"");
  match Json.of_string "  \"\\ude00\"" with
  | Ok _ -> Alcotest.fail "lone low surrogate accepted"
  | Error e ->
    check Alcotest.bool "error names the surrogate" true
      (let sub = "surrogate" in
       let n = String.length e and m = String.length sub in
       let rec scan i = i + m <= n && (String.sub e i m = sub || scan (i + 1)) in
       scan 0)

(* hostile floats: whatever lands in a document, the serialized form must
   stay parseable (a literal nan/inf token would not) *)
let arbitrary_json_wild =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) small_signed_int;
        oneofl
          [
            Json.Float Float.nan;
            Json.Float Float.infinity;
            Json.Float Float.neg_infinity;
            Json.Float 1e308;
            Json.Float (-0.0);
          ];
        map (fun f -> Json.Float f) float;
        map (fun s -> Json.String s) (string_size (int_bound 8) ~gen:printable);
      ]
  in
  let tree =
    fix
      (fun self depth ->
        if depth = 0 then scalar
        else
          frequency
            [
              (2, scalar);
              (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (depth - 1))));
              ( 1,
                map
                  (fun ps -> Json.Obj ps)
                  (list_size (int_bound 4)
                     (pair (string_size (int_bound 6) ~gen:printable) (self (depth - 1))))
              );
            ])
      2
  in
  QCheck.make tree

let prop_json_never_emits_nonfinite =
  QCheck.Test.make ~name:"json with non-finite floats always parses" ~count:300
    arbitrary_json_wild (fun t ->
      let parses s = match Json.of_string s with Ok _ -> true | Error _ -> false in
      parses (Json.to_string t) && parses (Json.to_string_pretty t))

let test_json_accessors () =
  let doc = Json.Obj [ ("n", Json.Int 3); ("xs", Json.List [ Json.String "a" ]) ] in
  check Alcotest.(option int) "member int" (Some 3)
    (Option.bind (Json.member "n" doc) Json.to_int);
  check Alcotest.(option string) "nested" (Some "a")
    (match Option.bind (Json.member "xs" doc) Json.to_list with
    | Some [ x ] -> Json.to_str x
    | _ -> None);
  check Alcotest.bool "absent" true (Json.member "zzz" doc = None)

(* ---------------- monotonic clock ---------------- *)

let test_monotime_nondecreasing () =
  (* a sleep must register, and readings must never go backwards *)
  let t0 = Monotime.now_ns () in
  Unix.sleepf 0.002;
  let t1 = Monotime.now_ns () in
  check Alcotest.bool "sleep advances the clock" true
    (Int64.sub t1 t0 >= 1_000_000L);
  let prev = ref (Monotime.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Monotime.now_ns () in
    check Alcotest.bool "nondecreasing" true (Int64.compare t !prev >= 0);
    prev := t
  done;
  let s0 = Monotime.now () in
  let s1 = Monotime.now () in
  check Alcotest.bool "float view agrees" true (s1 >= s0);
  check Alcotest.bool "elapsed is nonnegative" true
    (Monotime.elapsed_ns ~since:t0 >= 0L)

(* ---------------- domain pool ---------------- *)

(* run with an explicit concurrency cap, restoring the hardware default
   whatever happens — the pool is process-global state *)
let with_cap n f =
  Domain_pool.set_cap (Some n);
  Fun.protect ~finally:(fun () -> Domain_pool.set_cap None) f

let test_pool_runs_every_index () =
  with_cap 4 @@ fun () ->
  let hits = Array.make 7 0 in
  Domain_pool.parallel ~domains:7 (fun k -> hits.(k) <- hits.(k) + 1);
  check (Alcotest.array Alcotest.int) "each index exactly once"
    (Array.make 7 1) hits;
  (* degenerate cases *)
  let solo = ref (-1) in
  Domain_pool.parallel ~domains:1 (fun k -> solo := k);
  check Alcotest.int "domains=1 runs index 0" 0 !solo

let test_pool_reuse () =
  with_cap 4 @@ fun () ->
  (* warm: force workers into existence *)
  Domain_pool.parallel ~domains:4 (fun _ -> ());
  let n0 = Domain_pool.spawned () in
  check Alcotest.bool "warm-up spawned workers" true (n0 >= 1);
  for _ = 1 to 5 do
    Domain_pool.parallel ~domains:4 (fun _ -> ())
  done;
  check Alcotest.int "later phases reuse, never respawn" n0
    (Domain_pool.spawned ())

exception Boom of int

let test_pool_exception () =
  with_cap 4 @@ fun () ->
  (* indices 1 and 3 raise; the smallest index's exception surfaces *)
  (match
     Domain_pool.parallel ~domains:4 (fun k ->
         if k = 1 || k = 3 then raise (Boom k))
   with
  | () -> Alcotest.fail "exception was swallowed"
  | exception Boom 1 -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  (* the pool survives: workers were reparked despite the failure *)
  let hits = Array.make 4 0 in
  Domain_pool.parallel ~domains:4 (fun k -> hits.(k) <- hits.(k) + 1);
  check (Alcotest.array Alcotest.int) "pool usable after exception"
    (Array.make 4 1) hits

let test_pool_capped_serial_order () =
  (* cap 1: no workers, every index runs on the caller in index order —
     the oversubscription fallback the 1-core CI machines exercise *)
  with_cap 1 @@ fun () ->
  let order = ref [] in
  Domain_pool.parallel ~domains:5 (fun k -> order := k :: !order);
  check (Alcotest.list Alcotest.int) "caller runs indices in order"
    [ 0; 1; 2; 3; 4 ] (List.rev !order)

let prop_chunk_partitions =
  QCheck.Test.make ~name:"chunk tiles [0,n) in order, balanced" ~count:300
    QCheck.(pair (int_range 0 500) (int_range 1 32))
    (fun (n, domains) ->
      let pieces =
        List.init domains (fun k -> Domain_pool.chunk ~n ~domains k)
      in
      let covered =
        List.concat_map
          (fun (lo, hi) -> List.init (hi - lo) (fun i -> lo + i))
          pieces
      in
      let sizes = List.map (fun (lo, hi) -> hi - lo) pieces in
      let min_sz = List.fold_left min max_int sizes
      and max_sz = List.fold_left max 0 sizes in
      covered = List.init n Fun.id
      && max_sz - min_sz <= 1
      && Domain_pool.chunk ~n ~domains (-1) = (0, 0)
      && Domain_pool.chunk ~n ~domains domains = (0, 0))

let suite =
  suite
  @ [
      Alcotest.test_case "pool runs every index" `Quick
        test_pool_runs_every_index;
      Alcotest.test_case "pool reuses workers across phases" `Quick
        test_pool_reuse;
      Alcotest.test_case "pool re-raises smallest index" `Quick
        test_pool_exception;
      Alcotest.test_case "pool cap 1 is ordered serial" `Quick
        test_pool_capped_serial_order;
      qtest prop_chunk_partitions;
    ]

let suite =
  suite
  @ [
      Alcotest.test_case "monotime nondecreasing" `Quick
        test_monotime_nondecreasing;
      Alcotest.test_case "json parse scalars" `Quick test_json_parse_scalars;
      Alcotest.test_case "json parse escapes" `Quick test_json_parse_escapes;
      Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
      Alcotest.test_case "json non-finite floats" `Quick test_json_nonfinite;
      Alcotest.test_case "json surrogate pairs" `Quick test_json_surrogate_pairs;
      Alcotest.test_case "json accessors" `Quick test_json_accessors;
      qtest prop_json_roundtrip;
      qtest prop_json_never_emits_nonfinite;
    ]
