(* Tests for dfr_graph: digraphs, traversal, SCC, cycle enumeration. *)

open Dfr_graph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* random digraph generator for property tests *)
let arbitrary_digraph =
  let gen =
    QCheck.Gen.(
      int_range 1 12 >>= fun n ->
      list_size (int_range 0 40) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      >>= fun edges -> return (n, edges))
  in
  QCheck.make gen ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat "; " (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) es)))

(* ---------------- digraph ---------------- *)

let test_digraph_basic () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 0 1;
  (* duplicate ignored *)
  check Alcotest.int "edges" 2 (Digraph.num_edges g);
  check Alcotest.bool "mem" true (Digraph.mem_edge g 0 1);
  check Alcotest.bool "not mem" false (Digraph.mem_edge g 1 0);
  check (Alcotest.list Alcotest.int) "succ order" [ 1; 2 ] (Digraph.succ g 0);
  Digraph.remove_edge g 0 1;
  check Alcotest.int "after remove" 1 (Digraph.num_edges g);
  check Alcotest.bool "removed" false (Digraph.mem_edge g 0 1)

let test_digraph_bounds () =
  let g = Digraph.create 2 in
  Alcotest.check_raises "out of range" (Invalid_argument "Digraph: vertex out of range")
    (fun () -> Digraph.add_edge g 0 2)

let test_digraph_transpose () =
  let g = Digraph.of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  let t = Digraph.transpose g in
  check Alcotest.bool "1->0 in transpose" true (Digraph.mem_edge t 1 0);
  check Alcotest.bool "transpose twice = original" true
    (Digraph.equal g (Digraph.transpose t))

let test_digraph_induced () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let h = Digraph.induced g ~keep:(fun v -> v < 3) in
  check Alcotest.int "induced edges" 2 (Digraph.num_edges h);
  check Alcotest.bool "kept" true (Digraph.mem_edge h 0 1);
  check Alcotest.bool "dropped" false (Digraph.mem_edge h 2 3)

let test_digraph_copy_isolated () =
  let g = Digraph.of_edges 3 [ (0, 1) ] in
  let h = Digraph.copy g in
  Digraph.add_edge h 1 2;
  check Alcotest.bool "copy isolated" false (Digraph.mem_edge g 1 2)

let prop_edges_roundtrip =
  QCheck.Test.make ~name:"of_edges/edges roundtrip" ~count:200 arbitrary_digraph
    (fun (n, es) ->
      let g = Digraph.of_edges n es in
      let es' = Digraph.edges g in
      List.sort_uniq compare es = List.sort compare es')

(* ---------------- traversal ---------------- *)

let diamond = Digraph.of_edges 5 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_reachable () =
  let r = Traversal.reachable diamond [ 0 ] in
  check (Alcotest.array Alcotest.bool) "reach from 0"
    [| true; true; true; true; false |]
    r;
  let r1 = Traversal.reachable diamond [ 1 ] in
  check Alcotest.bool "4 unreachable" false r1.(4);
  check Alcotest.bool "2 unreachable from 1" false r1.(2)

let test_bfs_distances () =
  let d = Traversal.bfs_distances diamond 0 in
  check Alcotest.int "d(0)" 0 d.(0);
  check Alcotest.int "d(3)" 2 d.(3);
  check Alcotest.int "d(4) unreachable" max_int d.(4)

let test_topological_sort () =
  match Traversal.topological_sort diamond with
  | None -> Alcotest.fail "diamond is acyclic"
  | Some order ->
    check Alcotest.int "all vertices" 5 (List.length order);
    let pos = Hashtbl.create 8 in
    List.iteri (fun i v -> Hashtbl.replace pos v i) order;
    Digraph.iter_edges
      (fun u v ->
        if Hashtbl.find pos u >= Hashtbl.find pos v then
          Alcotest.fail "edge points backward")
      diamond

let test_topo_rejects_cycle () =
  let g = Digraph.of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  check Alcotest.bool "cyclic" false (Traversal.is_acyclic g);
  check Alcotest.bool "self loop cyclic" false
    (Traversal.is_acyclic (Digraph.of_edges 1 [ (0, 0) ]))

let test_find_cycle () =
  (match Traversal.find_cycle diamond with
  | None -> ()
  | Some _ -> Alcotest.fail "diamond has no cycle");
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2); (2, 1); (2, 3) ] in
  (match Traversal.find_cycle g with
  | Some c ->
    check (Alcotest.list Alcotest.int) "the 1-2 cycle" [ 1; 2 ] (List.sort compare c)
  | None -> Alcotest.fail "cycle exists");
  match Traversal.find_cycle (Digraph.of_edges 2 [ (0, 0) ]) with
  | Some [ 0 ] -> ()
  | _ -> Alcotest.fail "self loop is a singleton cycle"

let test_path () =
  (match Traversal.path diamond 0 3 with
  | Some p ->
    check Alcotest.int "length 3" 3 (List.length p);
    check Alcotest.int "starts at src" 0 (List.hd p)
  | None -> Alcotest.fail "path exists");
  check Alcotest.bool "no path" true (Traversal.path diamond 3 0 = None);
  match Traversal.path diamond 2 2 with
  | Some [ 2 ] -> ()
  | _ -> Alcotest.fail "trivial path"

let prop_topo_sound =
  QCheck.Test.make ~name:"topological sort is a witness of acyclicity" ~count:200
    arbitrary_digraph (fun (n, es) ->
      let g = Digraph.of_edges n es in
      match Traversal.topological_sort g with
      | None -> Traversal.find_cycle g <> None
      | Some order ->
        let pos = Hashtbl.create 8 in
        List.iteri (fun i v -> Hashtbl.replace pos v i) order;
        List.length order = n
        && Digraph.fold_edges
             (fun u v acc -> acc && Hashtbl.find pos u < Hashtbl.find pos v)
             g true)

(* ---------------- scc ---------------- *)

let test_scc_two_components () =
  let g = Digraph.of_edges 5 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (3, 4) ] in
  let r = Scc.compute g in
  check Alcotest.int "component count" 3 r.Scc.count;
  check Alcotest.bool "0,1 together" true (r.Scc.component.(0) = r.Scc.component.(1));
  check Alcotest.bool "2,3 together" true (r.Scc.component.(2) = r.Scc.component.(3));
  check Alcotest.bool "4 alone" true
    (r.Scc.component.(4) <> r.Scc.component.(3)
    && r.Scc.component.(4) <> r.Scc.component.(0))

let test_scc_condensation_acyclic () =
  let g = Digraph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 5); (5, 3) ] in
  let r = Scc.compute g in
  check Alcotest.int "2 components" 2 r.Scc.count;
  check Alcotest.bool "condensation acyclic" true
    (Traversal.is_acyclic (Scc.condensation g r))

let test_scc_nontrivial () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 0); (2, 2) ] in
  let r = Scc.compute g in
  check Alcotest.int "two cycle-capable components" 2
    (List.length (Scc.nontrivial g r))

let prop_scc_condensation_dag =
  QCheck.Test.make ~name:"condensation is always a DAG" ~count:200 arbitrary_digraph
    (fun (n, es) ->
      let g = Digraph.of_edges n es in
      let r = Scc.compute g in
      Traversal.is_acyclic (Scc.condensation g r))

let prop_scc_reverse_topological =
  QCheck.Test.make ~name:"component indices reverse-topological" ~count:200
    arbitrary_digraph (fun (n, es) ->
      let g = Digraph.of_edges n es in
      let r = Scc.compute g in
      Digraph.fold_edges
        (fun u v acc ->
          acc
          && (r.Scc.component.(u) = r.Scc.component.(v)
             || r.Scc.component.(u) > r.Scc.component.(v)))
        g true)

let prop_scc_members_partition =
  QCheck.Test.make ~name:"members partition the vertices" ~count:200 arbitrary_digraph
    (fun (n, es) ->
      let g = Digraph.of_edges n es in
      let r = Scc.compute g in
      let all = Array.to_list (Scc.members r) |> List.concat |> List.sort compare in
      all = List.init n Fun.id)

(* ---------------- cycles ---------------- *)

let cycle_valid g c =
  match c with
  | [] -> false
  | first :: _ ->
    let rec edges = function
      | [ last ] -> Digraph.mem_edge g last first
      | a :: (b :: _ as rest) -> Digraph.mem_edge g a b && edges rest
      | [] -> false
    in
    edges c && List.length (List.sort_uniq compare c) = List.length c

let test_cycles_triangle () =
  let g = Digraph.of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  check Alcotest.int "one cycle" 1 (List.length (Cycles.enumerate g))

let test_cycles_self_loop () =
  let g = Digraph.of_edges 2 [ (0, 0); (0, 1) ] in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "self loop" [ [ 0 ] ] (Cycles.enumerate g)

let test_cycles_complete_4 () =
  (* K4 directed both ways: 6 two-cycles + 8 triangles + 6 Hamiltonian *)
  let es = ref [] in
  for u = 0 to 3 do
    for v = 0 to 3 do
      if u <> v then es := (u, v) :: !es
    done
  done;
  let g = Digraph.of_edges 4 !es in
  let cs = Cycles.enumerate g in
  check Alcotest.int "20 elementary cycles" 20 (List.length cs);
  List.iter (fun c -> check Alcotest.bool "valid" true (cycle_valid g c)) cs

let test_cycles_two_disjoint () =
  let g = Digraph.of_edges 6 [ (0, 1); (1, 0); (3, 4); (4, 5); (5, 3) ] in
  check Alcotest.int "two cycles" 2 (List.length (Cycles.enumerate g))

let test_cycles_cap () =
  let es = ref [] in
  for u = 0 to 5 do
    for v = 0 to 5 do
      if u <> v then es := (u, v) :: !es
    done
  done;
  let g = Digraph.of_edges 6 !es in
  let limits = { Dfr_graph.Cycles.max_cycles = 10; max_length = 64 } in
  let cs, exhaustive = Cycles.enumerate_checked ~limits g in
  check Alcotest.int "capped" 10 (List.length cs);
  check Alcotest.bool "reported truncated" false exhaustive;
  let cs_all, exh_all = Cycles.enumerate_checked g in
  check Alcotest.bool "full run exhaustive" true exh_all;
  check Alcotest.bool "full run has more" true (List.length cs_all > 10)

let test_cycles_length_cap () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 3); (3, 0) ] in
  (* cycles: the 4-cycle, 3<->0 two-cycle *)
  let limits = { Dfr_graph.Cycles.max_cycles = 100; max_length = 2 } in
  let cs = Cycles.enumerate ~limits g in
  check Alcotest.int "only short cycles" 1 (List.length cs)

let prop_cycles_valid_distinct =
  QCheck.Test.make ~name:"enumerated cycles valid and distinct" ~count:100
    arbitrary_digraph (fun (n, es) ->
      let g = Digraph.of_edges n es in
      let cs = Cycles.enumerate g in
      (* cycles are rooted at their smallest vertex, so the raw lists are
         canonical: distinct lists = distinct cycles *)
      List.for_all (cycle_valid g) cs
      && List.length (List.sort_uniq compare cs) = List.length cs)

let prop_cycles_iff_cyclic =
  QCheck.Test.make ~name:"cycles found iff not acyclic" ~count:200 arbitrary_digraph
    (fun (n, es) ->
      let g = Digraph.of_edges n es in
      Cycles.enumerate g <> [] = not (Traversal.is_acyclic g))

(* the implicit-rows engine (rows generated per vertex on demand) must be
   bit-for-bit the whole-graph enumeration: same cycles, same order, same
   exhaustiveness flag — also under truncation, where the shared prefix
   is what the checker's verdicts depend on *)
let prop_rows_engine_matches_graph =
  QCheck.Test.make ~name:"implicit-rows enumeration = frozen enumeration"
    ~count:200 arbitrary_digraph (fun (n, es) ->
      let g = Digraph.of_edges n es in
      let c = Digraph.freeze g in
      let row v = Array.of_list (Csr.succ c v) in
      let reference = Cycles.enumerate_checked g in
      let via_rows = Cycles.enumerate_checked_rows ~n ~row () in
      reference = via_rows)

let prop_rows_engine_matches_graph_truncated =
  QCheck.Test.make ~name:"implicit-rows truncation = frozen truncation"
    ~count:200 arbitrary_digraph (fun (n, es) ->
      let limits = { Cycles.max_cycles = 3; max_length = 4 } in
      let g = Digraph.of_edges n es in
      let c = Digraph.freeze g in
      let row v = Array.of_list (Csr.succ c v) in
      Cycles.enumerate_checked ~limits g
      = Cycles.enumerate_checked_rows ~limits ~n ~row ())

(* ---------------- csr ---------------- *)

let test_csr_freeze_roundtrip () =
  let g = Digraph.of_edges 4 [ (0, 2); (0, 1); (2, 3); (3, 0); (0, 1) ] in
  let c = Digraph.freeze g in
  check Alcotest.int "vertices" 4 (Csr.num_vertices c);
  check Alcotest.int "edges deduped" 4 (Csr.num_edges c);
  check (Alcotest.list Alcotest.int) "rows sorted" [ 1; 2 ] (Csr.succ c 0);
  check Alcotest.bool "mem" true (Csr.mem_edge c 3 0);
  check Alcotest.bool "not mem" false (Csr.mem_edge c 1 0);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "edge list"
    [ (0, 1); (0, 2); (2, 3); (3, 0) ]
    (Csr.edges c)

let test_csr_row_cursor () =
  let c = Csr.of_edges 3 [ (0, 2); (0, 1); (2, 0) ] in
  let lo, hi = Csr.row c 0 in
  check Alcotest.int "row width" 2 (hi - lo);
  check Alcotest.int "first" 1 (Csr.target c lo);
  check Alcotest.int "second" 2 (Csr.target c (lo + 1));
  let lo1, hi1 = Csr.row c 1 in
  check Alcotest.int "empty row" 0 (hi1 - lo1)

let test_csr_transpose_equal () =
  let c = Csr.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 1) ] in
  check Alcotest.bool "double transpose" true
    (Csr.equal c (Csr.transpose (Csr.transpose c)));
  check Alcotest.bool "transpose differs" false (Csr.equal c (Csr.transpose c))

let prop_freeze_preserves_edges =
  QCheck.Test.make ~name:"freeze preserves the edge set" ~count:200
    arbitrary_digraph (fun (n, es) ->
      let g = Digraph.of_edges n es in
      let c = Digraph.freeze g in
      List.sort compare (Csr.edges c) = List.sort compare (Digraph.edges g))

let prop_digraph_equal_matches_edge_sets =
  QCheck.Test.make ~name:"Digraph.equal = edge-set equality" ~count:200
    (QCheck.pair arbitrary_digraph arbitrary_digraph)
    (fun ((n1, es1), (n2, es2)) ->
      let g1 = Digraph.of_edges n1 es1 and g2 = Digraph.of_edges n2 es2 in
      Digraph.equal g1 g2
      = (n1 = n2
        && List.sort compare (Digraph.edges g1)
           = List.sort compare (Digraph.edges g2)))

let prop_scc_bounded =
  QCheck.Test.make ~name:"compute_bounded restricts to vertices >= least"
    ~count:200
    (QCheck.pair arbitrary_digraph (QCheck.int_range 0 12))
    (fun ((n, es), least) ->
      let least = min least n in
      let c = Digraph.freeze (Digraph.of_edges n es) in
      let r = Scc.compute_bounded c ~least in
      let ok = ref true in
      (* excluded vertices hold -1, included ones a valid component *)
      for v = 0 to n - 1 do
        if v < least then (if r.Scc.component.(v) <> -1 then ok := false)
        else if r.Scc.component.(v) < 0 || r.Scc.component.(v) >= r.Scc.count
        then ok := false
      done;
      (* reverse topological numbering within the induced subgraph *)
      Csr.iter_edges
        (fun u v ->
          if u >= least && v >= least then
            if r.Scc.component.(u) < r.Scc.component.(v) then ok := false)
        c;
      !ok)

(* ---------------- dot ---------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_dot_output () =
  let g = Digraph.of_edges 2 [ (0, 1) ] in
  let s = Dot.to_string ~name:"t" ~vertex_label:(Printf.sprintf "v%d") g in
  check Alcotest.bool "mentions edge" true (contains s "n0 -> n1");
  check Alcotest.bool "mentions label" true (contains s "v1");
  check Alcotest.bool "escapes quotes" true
    (contains (Dot.to_string ~name:"a\"b" g) "a\\\"b")

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick test_digraph_basic;
    Alcotest.test_case "digraph bounds" `Quick test_digraph_bounds;
    Alcotest.test_case "digraph transpose" `Quick test_digraph_transpose;
    Alcotest.test_case "digraph induced" `Quick test_digraph_induced;
    Alcotest.test_case "digraph copy isolated" `Quick test_digraph_copy_isolated;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
    Alcotest.test_case "topological sort" `Quick test_topological_sort;
    Alcotest.test_case "topo rejects cycles" `Quick test_topo_rejects_cycle;
    Alcotest.test_case "find cycle" `Quick test_find_cycle;
    Alcotest.test_case "bfs path" `Quick test_path;
    Alcotest.test_case "scc two components" `Quick test_scc_two_components;
    Alcotest.test_case "scc condensation" `Quick test_scc_condensation_acyclic;
    Alcotest.test_case "scc nontrivial" `Quick test_scc_nontrivial;
    Alcotest.test_case "cycles triangle" `Quick test_cycles_triangle;
    Alcotest.test_case "cycles self loop" `Quick test_cycles_self_loop;
    Alcotest.test_case "cycles K4 = 20" `Quick test_cycles_complete_4;
    Alcotest.test_case "cycles disjoint" `Quick test_cycles_two_disjoint;
    Alcotest.test_case "cycles cap" `Quick test_cycles_cap;
    Alcotest.test_case "cycles length cap" `Quick test_cycles_length_cap;
    Alcotest.test_case "csr freeze roundtrip" `Quick test_csr_freeze_roundtrip;
    Alcotest.test_case "csr row cursor" `Quick test_csr_row_cursor;
    Alcotest.test_case "csr transpose/equal" `Quick test_csr_transpose_equal;
    Alcotest.test_case "dot output" `Quick test_dot_output;
    qtest prop_edges_roundtrip;
    qtest prop_freeze_preserves_edges;
    qtest prop_digraph_equal_matches_edge_sets;
    qtest prop_scc_bounded;
    qtest prop_topo_sound;
    qtest prop_scc_condensation_dag;
    qtest prop_scc_reverse_topological;
    qtest prop_scc_members_partition;
    qtest prop_cycles_valid_distinct;
    qtest prop_cycles_iff_cyclic;
    qtest prop_rows_engine_matches_graph;
    qtest prop_rows_engine_matches_graph_truncated;
  ]

let test_dot_to_file () =
  let g = Digraph.of_edges 3 [ (0, 1); (1, 2) ] in
  let file = Filename.temp_file "dfr_dot" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Dot.to_file ~name:"t" file g;
      let ic = open_in file in
      let n = in_channel_length ic in
      close_in ic;
      check Alcotest.bool "file written" true (n > 20))

let prop_bfs_path_valid =
  QCheck.Test.make ~name:"BFS paths are valid and shortest" ~count:100
    arbitrary_digraph (fun (n, es) ->
      let g = Digraph.of_edges n es in
      let ok = ref true in
      for src = 0 to n - 1 do
        let dist = Traversal.bfs_distances g src in
        for dst = 0 to n - 1 do
          match Traversal.path g src dst with
          | None -> if dist.(dst) <> max_int then ok := false
          | Some p ->
            if List.length p <> dist.(dst) + 1 then ok := false;
            if List.hd p <> src || List.nth p (List.length p - 1) <> dst then
              ok := false;
            let rec edges_ok = function
              | a :: (b :: _ as rest) -> Digraph.mem_edge g a b && edges_ok rest
              | _ -> true
            in
            if not (edges_ok p) then ok := false
        done
      done;
      !ok)

let suite =
  suite
  @ [
      Alcotest.test_case "dot to_file" `Quick test_dot_to_file;
      qtest prop_bfs_path_valid;
    ]

(* ---------------- DOT escaping ---------------- *)

let test_dot_escape () =
  let e = Dot.escape in
  Alcotest.check Alcotest.string "plain" "abc" (e "abc");
  Alcotest.check Alcotest.string "quote" "say \\\"hi\\\"" (e "say \"hi\"");
  Alcotest.check Alcotest.string "backslash" "a\\\\b" (e "a\\b");
  Alcotest.check Alcotest.string "newline becomes \\n" "a\\nb" (e "a\nb");
  Alcotest.check Alcotest.string "carriage return dropped" "a\\nb" (e "a\r\nb");
  (* the result can always sit inside a double-quoted DOT string: no raw
     quote, no raw line break *)
  let hostile = "l1\n\"l2\"\\\r\nend" in
  let escaped = e hostile in
  String.iter
    (fun c ->
      if c = '\n' || c = '\r' then Alcotest.fail "raw line break survived")
    escaped;
  let unescaped_quote = ref false in
  String.iteri
    (fun i c ->
      if c = '"' && (i = 0 || escaped.[i - 1] <> '\\') then unescaped_quote := true)
    escaped;
  Alcotest.check Alcotest.bool "no unescaped quote" false !unescaped_quote

let suite = suite @ [ Alcotest.test_case "dot escape" `Quick test_dot_escape ]

(* ---------------- Reach: decremental reachability ---------------- *)

(* 0 -> 1 -> 3, 0 -> 2 -> 3, with 3 the sink: two vertex-disjoint routes,
   so cutting one arm leaves everything reachable and cutting both cuts
   the sources off. *)
let diamond () = Csr.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_reach_cut_and_restore () =
  let r = Reach.create (diamond ()) ~sinks:[ 3 ] in
  let check = Alcotest.check Alcotest.bool in
  check "all reach initially" true (Reach.reaches_all r ~sources:[ 0; 1; 2 ]);
  Reach.disable_edge r 1 3;
  check "one arm cut: 1 is off" false (Reach.reaches r 1);
  check "one arm cut: 0 detours" true (Reach.reaches r 0);
  Reach.disable_edge r 2 3;
  check "both arms cut: 0 is off" false (Reach.reaches r 0);
  check "sink still reaches itself" true (Reach.reaches r 3);
  Reach.enable_edge r 1 3;
  check "restore flips 0 back" true (Reach.reaches_all r ~sources:[ 0; 1 ]);
  check "2 still cut" false (Reach.reaches r 2);
  Reach.enable_edge r 2 3;
  check "full restore" true (Reach.reaches_all r ~sources:[ 0; 1; 2 ]);
  Alcotest.check Alcotest.int "nothing left disabled" 0 (Reach.disabled_count r)

let test_reach_counted_disables () =
  let r = Reach.create (diamond ()) ~sinks:[ 3 ] in
  Reach.disable_edge r 2 3;
  (* same edge disabled at two search depths: one enable is not enough *)
  Reach.disable_edge r 1 3;
  Reach.disable_edge r 1 3;
  Alcotest.check Alcotest.int "three instances" 3 (Reach.disabled_count r);
  Reach.enable_edge r 1 3;
  Alcotest.check Alcotest.bool "still one disable pending" false
    (Reach.reaches r 1);
  Reach.enable_edge r 1 3;
  Alcotest.check Alcotest.bool "second enable restores" true
    (Reach.reaches r 1);
  Alcotest.check_raises "over-enable rejected"
    (Invalid_argument "Reach.enable_edge: edge not disabled") (fun () ->
      Reach.enable_edge r 1 3);
  Alcotest.check_raises "unknown edge rejected"
    (Invalid_argument "Reach.disable_edge: no such edge") (fun () ->
      Reach.disable_edge r 3 0)

(* Random graphs, random disable/enable scripts: Reach must agree with a
   naive reverse BFS over the surviving edge multiset at every step. *)
let prop_reach_matches_naive =
  qtest
  @@ QCheck.Test.make ~count:60 ~name:"Reach agrees with naive recompute"
       QCheck.(
         pair (int_range 2 9)
           (pair (list_of_size Gen.(int_range 0 25) (pair small_nat small_nat))
              (list_of_size Gen.(int_range 0 40) (pair bool small_nat))))
       (fun (n, (raw_edges, script)) ->
         let edges =
           List.sort_uniq compare
             (List.map (fun (u, v) -> (u mod n, v mod n)) raw_edges)
         in
         let g = Csr.of_edges n edges in
         let sinks = [ 0 ] in
         let r = Reach.create g ~sinks in
         (* the naive model: multiset of disabled edges as an assoc count *)
         let disabled = Hashtbl.create 16 in
         let count e = Option.value (Hashtbl.find_opt disabled e) ~default:0 in
         let naive_reaches v =
           let live (u, w) = count (u, w) = 0 in
           let seen = Array.make n false in
           let rec go u =
             if not seen.(u) then begin
               seen.(u) <- true;
               List.iter
                 (fun (a, b) -> if b = u && live (a, b) then go a)
                 edges
             end
           in
           List.iter go sinks;
           seen.(v)
         in
         let ok = ref true in
         let step (enable, i) =
           match edges with
           | [] -> ()
           | _ ->
             let e = List.nth edges (i mod List.length edges) in
             let u, v = e in
             if enable then begin
               if count e > 0 then begin
                 Hashtbl.replace disabled e (count e - 1);
                 Reach.enable_edge r u v
               end
             end
             else begin
               Hashtbl.replace disabled e (count e + 1);
               Reach.disable_edge r u v
             end;
             for w = 0 to n - 1 do
               if Reach.reaches r w <> naive_reaches w then ok := false
             done
         in
         List.iter step script;
         !ok)

let suite =
  suite
  @ [
      Alcotest.test_case "reach cut and restore" `Quick
        test_reach_cut_and_restore;
      Alcotest.test_case "reach counted disables" `Quick
        test_reach_counted_disables;
      prop_reach_matches_naive;
    ]
