(* The parallel paths (Bwg.build ~domains, Checker's classification scan)
   must be bit-for-bit identical to their serial counterparts: same graph,
   same witness lists in the same order, same verdict with the same
   witness cycle.  DESIGN.md "Graph core architecture" explains why the
   merge orders make this hold; these tests pin it. *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core

let check = Alcotest.check

let cube2 = Net.wormhole (Topology.hypercube 2) ~vcs:2
let cube3 = Net.wormhole (Topology.hypercube 3) ~vcs:2
let saf33 = Net.store_and_forward (Topology.mesh [| 3; 3 |]) ~classes:2

(* graph + every edge's witness list, serial vs ~domains *)
let check_build_identical name net algo =
  let space = State_space.build net algo in
  let serial = Bwg.build space in
  let parallel = Bwg.build ~domains:4 space in
  let gs = Bwg.graph serial and gp = Bwg.graph parallel in
  check Alcotest.bool (name ^ ": same graph") true (Dfr_graph.Digraph.equal gs gp);
  Dfr_graph.Digraph.iter_edges
    (fun q1 q2 ->
      if Bwg.witnesses serial q1 q2 <> Bwg.witnesses parallel q1 q2 then
        Alcotest.failf "%s: witnesses of %d->%d differ" name q1 q2)
    gs

let test_build_efa_relaxed () =
  (* cyclic wormhole BWG: exercises the closure path and the Tarjan
     fallback inside it *)
  check_build_identical "efa-relaxed 2-cube" cube2 Hypercube_wormhole.efa_relaxed

let test_build_efa_3cube () =
  check_build_identical "efa 3-cube" cube3 Hypercube_wormhole.efa

let test_build_saf () =
  (* store-and-forward: the non-wormhole emit path *)
  check_build_identical "two-buffer 3x3" saf33 Mesh_saf.two_buffer

let test_build_domains_exceed_dests () =
  (* more domains than destinations: chunking must still cover them all *)
  let space = State_space.build cube2 Hypercube_wormhole.efa_relaxed in
  let serial = Bwg.build space in
  let parallel = Bwg.build ~domains:16 space in
  check Alcotest.bool "same graph" true
    (Dfr_graph.Digraph.equal (Bwg.graph serial) (Bwg.graph parallel))

(* the classification scan must report the same True Cycle — the one of
   minimal index in shortest-first order — no matter how many domains
   race over the cycle list *)
let check_verdict_identical name net algo =
  let serial = Checker.verdict net algo in
  let parallel = Checker.verdict ~domains:4 net algo in
  if serial <> parallel then Alcotest.failf "%s: verdicts differ" name

let test_verdict_efa_relaxed () =
  check_verdict_identical "efa-relaxed 2-cube" cube2 Hypercube_wormhole.efa_relaxed

let test_verdict_efa_3cube () =
  check_verdict_identical "efa 3-cube" cube3 Hypercube_wormhole.efa

let test_verdict_registry () =
  (* every registered algorithm on its smallest network *)
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e None in
      check_verdict_identical e.Registry.name net e.Registry.algo)
    Registry.all

let suite =
  [
    Alcotest.test_case "build: efa-relaxed 2-cube" `Quick test_build_efa_relaxed;
    Alcotest.test_case "build: efa 3-cube" `Quick test_build_efa_3cube;
    Alcotest.test_case "build: store-and-forward" `Quick test_build_saf;
    Alcotest.test_case "build: domains > dests" `Quick test_build_domains_exceed_dests;
    Alcotest.test_case "verdict: efa-relaxed 2-cube" `Quick test_verdict_efa_relaxed;
    Alcotest.test_case "verdict: efa 3-cube" `Quick test_verdict_efa_3cube;
    Alcotest.test_case "verdict: registry sweep" `Slow test_verdict_registry;
  ]
