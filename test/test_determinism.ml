(* The parallel paths (Bwg.build ~domains, Checker's classification scan)
   must be bit-for-bit identical to their serial counterparts: same graph,
   same witness lists in the same order, same verdict with the same
   witness cycle.  DESIGN.md "Graph core architecture" explains why the
   merge orders make this hold; these tests pin it. *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core

let check = Alcotest.check

(* The pool clamps in-flight indices to the core count, so on a 1-core
   CI machine ~domains:4 would silently degrade to ordered serial
   execution and these differentials would stop exercising real
   concurrency.  Force the cap up for the duration of each test. *)
let with_cap n f =
  Dfr_util.Domain_pool.set_cap (Some n);
  Fun.protect ~finally:(fun () -> Dfr_util.Domain_pool.set_cap None) f

let cube2 = Net.wormhole (Topology.hypercube 2) ~vcs:2
let cube3 = Net.wormhole (Topology.hypercube 3) ~vcs:2
let saf33 = Net.store_and_forward (Topology.mesh [| 3; 3 |]) ~classes:2

(* graph + every edge's witness list, serial vs ~domains *)
let check_build_identical name net algo =
  with_cap 4 @@ fun () ->
  let space = State_space.build net algo in
  let serial = Bwg.build space in
  let parallel = Bwg.build ~domains:4 space in
  let gs = Bwg.graph serial and gp = Bwg.graph parallel in
  check Alcotest.bool (name ^ ": same graph") true (Dfr_graph.Digraph.equal gs gp);
  Dfr_graph.Digraph.iter_edges
    (fun q1 q2 ->
      if Bwg.witnesses serial q1 q2 <> Bwg.witnesses parallel q1 q2 then
        Alcotest.failf "%s: witnesses of %d->%d differ" name q1 q2)
    gs

let test_build_efa_relaxed () =
  (* cyclic wormhole BWG: exercises the closure path and the Tarjan
     fallback inside it *)
  check_build_identical "efa-relaxed 2-cube" cube2 Hypercube_wormhole.efa_relaxed

let test_build_efa_3cube () =
  check_build_identical "efa 3-cube" cube3 Hypercube_wormhole.efa

let test_build_saf () =
  (* store-and-forward: the non-wormhole emit path *)
  check_build_identical "two-buffer 3x3" saf33 Mesh_saf.two_buffer

let test_build_domains_exceed_dests () =
  (* more domains than destinations: chunking must still cover them all *)
  let space = State_space.build cube2 Hypercube_wormhole.efa_relaxed in
  let serial = Bwg.build space in
  let parallel = Bwg.build ~domains:16 space in
  check Alcotest.bool "same graph" true
    (Dfr_graph.Digraph.equal (Bwg.graph serial) (Bwg.graph parallel))

(* the classification scan must report the same True Cycle — the one of
   minimal index in shortest-first order — no matter how many domains
   race over the cycle list *)
let check_verdict_identical name net algo =
  with_cap 4 @@ fun () ->
  let serial = Checker.verdict net algo in
  let parallel = Checker.verdict ~domains:4 net algo in
  if serial <> parallel then Alcotest.failf "%s: verdicts differ" name

let test_verdict_efa_relaxed () =
  check_verdict_identical "efa-relaxed 2-cube" cube2 Hypercube_wormhole.efa_relaxed

let test_verdict_efa_3cube () =
  check_verdict_identical "efa 3-cube" cube3 Hypercube_wormhole.efa

let test_verdict_registry () =
  (* every registered algorithm on its smallest network *)
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e None in
      check_verdict_identical e.Registry.name net e.Registry.algo)
    Registry.all

(* ---- the phases parallelized by the domain pool, individually ---- *)

(* Algo.validate sweeps (buffer, dest) pairs; the parallel sweep must
   produce the same Ok, and — harder — the same Error string with the
   problems in the same buffer order *)
let test_validate_parallel () =
  with_cap 4 @@ fun () ->
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e None in
      let serial = Algo.validate e.Registry.algo net in
      List.iter
        (fun d ->
          if Algo.validate ~domains:d e.Registry.algo net <> serial then
            Alcotest.failf "%s: validate differs at domains=%d" e.Registry.name
              d)
        [ 2; 4; 16 ])
    Registry.all;
  (* a broken relation: every buffer misroutes, so the error message
     aggregates many problems and any merge-order slip shows up *)
  let broken =
    Algo.make ~name:"broken" ~wait:Algo.Any_wait
      ~route:(fun _ b ~dest:_ -> [ Buf.id b ])
      ()
  in
  let serial = Algo.validate broken cube2 in
  check Alcotest.bool "broken algo is rejected" true (Result.is_error serial);
  List.iter
    (fun d ->
      if Algo.validate ~domains:d broken cube2 <> serial then
        Alcotest.failf "broken: error string differs at domains=%d" d)
    [ 2; 4 ]

(* the state space itself: reachability, outputs and waits per
   (buffer, dest) must match the serial build, under both storages *)
let check_space_identical name ~storage net algo =
  with_cap 4 @@ fun () ->
  let s1 = State_space.build ~storage ~domains:1 net algo in
  let s4 = State_space.build ~storage ~domains:4 net algo in
  for buf = 0 to State_space.num_buffers s1 - 1 do
    for dest = 0 to State_space.num_nodes s1 - 1 do
      if
        State_space.is_reachable s1 ~buf ~dest
        <> State_space.is_reachable s4 ~buf ~dest
        || State_space.outputs s1 ~buf ~dest
           <> State_space.outputs s4 ~buf ~dest
        || State_space.waits s1 ~buf ~dest <> State_space.waits s4 ~buf ~dest
      then Alcotest.failf "%s: state (%d, %d) differs" name buf dest
    done
  done;
  check Alcotest.bool (name ^ ": same stuck states") true
    (State_space.stuck_states s1 = State_space.stuck_states s4)

let test_space_dense () =
  check_space_identical "dense efa 3-cube" ~storage:`Dense cube3
    Hypercube_wormhole.efa

let test_space_sparse () =
  check_space_identical "sparse efa 3-cube" ~storage:`Sparse cube3
    Hypercube_wormhole.efa;
  check_space_identical "sparse two-buffer 3x3" ~storage:`Sparse saf33
    Mesh_saf.two_buffer

(* ---- end to end: the whole catalogue, byte for byte ---- *)

let report_bytes ~domains net algo =
  Report_json.to_string net algo (Checker.check ~domains net algo)

let test_report_catalogue () =
  with_cap 4 @@ fun () ->
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e None in
      let reference = report_bytes ~domains:1 net e.Registry.algo in
      List.iter
        (fun d ->
          check Alcotest.string
            (Printf.sprintf "%s: report bytes at domains=%d" e.Registry.name d)
            reference
            (report_bytes ~domains:d net e.Registry.algo))
        [ 2; 4 ])
    Registry.all

(* no hand-picked structure: random routing relations from the fuzzer's
   generator must also report identically across domain counts *)
let prop_report_domains_invariant =
  QCheck.Test.make ~name:"random cases report identically across domains"
    ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      with_cap 4 @@ fun () ->
      let rng = Dfr_util.Prng.create seed in
      let case = Dfr_fuzz.Gen.case rng ~max_nodes:8 in
      let net, algo = Dfr_fuzz.Case.to_net_algo case in
      let reference = report_bytes ~domains:1 net algo in
      List.for_all
        (fun d -> report_bytes ~domains:d net algo = reference)
        [ 2; 4 ])

let suite =
  [
    Alcotest.test_case "build: efa-relaxed 2-cube" `Quick test_build_efa_relaxed;
    Alcotest.test_case "build: efa 3-cube" `Quick test_build_efa_3cube;
    Alcotest.test_case "build: store-and-forward" `Quick test_build_saf;
    Alcotest.test_case "build: domains > dests" `Quick test_build_domains_exceed_dests;
    Alcotest.test_case "verdict: efa-relaxed 2-cube" `Quick test_verdict_efa_relaxed;
    Alcotest.test_case "verdict: efa 3-cube" `Quick test_verdict_efa_3cube;
    Alcotest.test_case "verdict: registry sweep" `Slow test_verdict_registry;
    Alcotest.test_case "validate: parallel sweep" `Quick test_validate_parallel;
    Alcotest.test_case "space: dense parallel build" `Quick test_space_dense;
    Alcotest.test_case "space: sparse parallel build" `Quick test_space_sparse;
    Alcotest.test_case "reports: catalogue across domains" `Slow
      test_report_catalogue;
    QCheck_alcotest.to_alcotest prop_report_domains_invariant;
  ]
