(* Figures 1-2: Duato's incoherent example, reconstructed and re-derived.

   The paper's claims, verified mechanically here:
   - the algorithm is not prefix-closed (qB2 usable by n3-bound packets
     only, yet it lies on a path a packet from n2 to n1 could never take);
   - the BWG contains self-loop True Cycles qA1 -> qA1 and qH1 -> qH1,
     each realized by ONE packet that occupies the channel plus qB2 and
     waits on its own buffer (the paper's n = 1 deadlock);
   - the two-packet cycle qA1 -> qH1 -> qA1 is a False Resource Cycle: both
     realizations would need qB2 simultaneously. *)

open Dfr_network
open Dfr_routing
open Dfr_core

let check = Alcotest.check
let net = Incoherent_example.network ()
let algo = Incoherent_example.algo
let space = State_space.build net algo
let bwg = Bwg.build space
let qa1 = Incoherent_example.q_a1 net
let qh1 = Incoherent_example.q_h1 net
let qb1 = Incoherent_example.q_b1 net
let qb2 = Incoherent_example.q_b2 net
let qc1 = Incoherent_example.q_c1 net
let qf1 = Incoherent_example.q_f1 net
let n1 = Incoherent_example.n1
let n2 = Incoherent_example.n2
let n3 = Incoherent_example.n3

let test_network_shape () =
  check Alcotest.int "3 nodes" 3 (Net.num_nodes net);
  check Alcotest.int "6 channels + 6 endpoints" 12 (Net.num_buffers net);
  check Alcotest.bool "distinct parallel channels" true (qa1 <> qh1)

let test_route_facts () =
  (* minimal routing plus the qB2 exception *)
  let at_n2_for_n3 =
    algo.Algo.route net (Net.buffer net (Buf.id (Net.injection net n2))) ~dest:n3
  in
  check Alcotest.bool "qB2 usable toward n3" true (List.mem qb2 at_n2_for_n3);
  check Alcotest.bool "qC1 usable toward n3" true (List.mem qc1 at_n2_for_n3);
  let at_n2_for_n1 =
    algo.Algo.route net (Net.buffer net (Buf.id (Net.injection net n2))) ~dest:n1
  in
  check (Alcotest.list Alcotest.int) "only qB1 toward n1" [ qb1 ] at_n2_for_n1

let test_qb2_never_waited_on () =
  (* the paper's motivating distinction: qB2 may be used but never waited
     on, so no BWG edge targets it *)
  State_space.iter_reachable space (fun ~buf ~dest ->
      if List.mem qb2 (State_space.waits space ~buf ~dest) then
        Alcotest.fail "qB2 appears in a waiting set");
  check Alcotest.bool "no BWG edge into qB2" true
    (List.for_all
       (fun (_, w) -> w <> qb2)
       (Dfr_graph.Digraph.edges (Bwg.graph bwg)))

let test_not_prefix_closed () =
  (* a packet from n2 to n3 can reach n1 through qB2, but a packet from n2
     to n1 cannot use qB2 *)
  check Alcotest.bool "qB2 reachable with dest n3" true
    (State_space.is_reachable space ~buf:qb2 ~dest:n3);
  check Alcotest.bool "qB2 unreachable with dest n1" false
    (State_space.is_reachable space ~buf:qb2 ~dest:n1)

let test_bwg_has_published_edges () =
  let g = Bwg.graph bwg in
  let edge a b = Dfr_graph.Digraph.mem_edge g a b in
  check Alcotest.bool "qA1 self loop" true (edge qa1 qa1);
  check Alcotest.bool "qH1 self loop" true (edge qh1 qh1);
  check Alcotest.bool "qA1 -> qH1" true (edge qa1 qh1);
  check Alcotest.bool "qH1 -> qA1" true (edge qh1 qa1);
  check Alcotest.bool "qB2 -> qA1" true (edge qb2 qa1);
  check Alcotest.bool "qB2 -> qH1" true (edge qb2 qh1);
  (* no waiting dependencies among the transit buffers beyond the figure *)
  check Alcotest.bool "no qC1 cycle participation" true
    (not (edge qc1 qa1) && not (edge qc1 qh1));
  check Alcotest.bool "qF1 only waits on qB1" true
    (edge qf1 qb1 && not (edge qf1 qc1))

let test_cycle_inventory () =
  let cycles, exhaustive = Bwg.cycles bwg in
  check Alcotest.bool "exhaustive" true exhaustive;
  let sorted_cycles = List.map (List.sort compare) cycles in
  check Alcotest.bool "qA1 self" true (List.mem [ qa1 ] sorted_cycles);
  check Alcotest.bool "qH1 self" true (List.mem [ qh1 ] sorted_cycles);
  check Alcotest.bool "two-cycle" true (List.mem (List.sort compare [ qa1; qh1 ]) sorted_cycles);
  check Alcotest.int "exactly the published three" 3 (List.length cycles)

let test_self_loops_true () =
  List.iter
    (fun q ->
      match Cycle_class.classify bwg [ q ] with
      | Cycle_class.True_cycle [ p ] ->
        check Alcotest.int "single packet" p.Cycle_class.waits_for q;
        check
          (Alcotest.list Alcotest.int)
          "occupies channel then qB2" [ q; qb2 ] p.Cycle_class.path;
        check Alcotest.int "destined n3" n3 p.Cycle_class.dest
      | _ -> Alcotest.fail "self loop must be a True Cycle with one packet")
    [ qa1; qh1 ]

let test_two_cycle_false_resource () =
  match Cycle_class.classify bwg [ qa1; qh1 ] with
  | Cycle_class.False_resource_cycle { exhaustive } ->
    check Alcotest.bool "exhaustively refuted" true exhaustive
  | Cycle_class.True_cycle _ ->
    Alcotest.fail "the two-packet cycle needs qB2 twice: False Resource Cycle"

let test_checker_verdict () =
  match Checker.verdict net algo with
  | Checker.Deadlock_possible (Checker.True_cycle { cycle; packets }) ->
    check Alcotest.int "self loop" 1 (List.length cycle);
    check Alcotest.int "one packet" 1 (List.length packets)
  | v -> Alcotest.failf "expected a True-Cycle deadlock, got %a" (Checker.pp_verdict net) v

let test_replay_confirms () =
  match Checker.verdict net algo with
  | Checker.Deadlock_possible failure ->
    check
      (Alcotest.option Alcotest.bool)
      "dynamic confirmation" (Some true)
      (Dfr_scenario.Scenario.replay net algo failure)
  | _ -> Alcotest.fail "deadlock expected"

let test_coherent_variant_is_free () =
  (* removing the incoherent exception (qB2 strictly minimal, i.e. only for
     n1-bound packets like qB1) yields a deadlock-free algorithm *)
  let coherent_route net' b ~dest =
    List.filter (fun q -> q <> Incoherent_example.q_b2 net')
      (algo.Algo.route net' b ~dest)
  in
  let coherent =
    Algo.make ~name:"coherent-variant" ~wait:Algo.Specific_wait ~route:coherent_route ()
  in
  match Checker.verdict net coherent with
  | Checker.Deadlock_free _ -> ()
  | v -> Alcotest.failf "coherent variant should be free, got %a" (Checker.pp_verdict net) v

let suite =
  [
    Alcotest.test_case "network shape (Figure 1)" `Quick test_network_shape;
    Alcotest.test_case "routing relation facts" `Quick test_route_facts;
    Alcotest.test_case "qB2 usable but never waited on" `Quick test_qb2_never_waited_on;
    Alcotest.test_case "not prefix-closed" `Quick test_not_prefix_closed;
    Alcotest.test_case "BWG edges (Figure 2)" `Quick test_bwg_has_published_edges;
    Alcotest.test_case "cycle inventory (Figure 2)" `Quick test_cycle_inventory;
    Alcotest.test_case "self loops are True Cycles" `Quick test_self_loops_true;
    Alcotest.test_case "two-cycle is a False Resource Cycle" `Quick
      test_two_cycle_false_resource;
    Alcotest.test_case "checker verdict" `Quick test_checker_verdict;
    Alcotest.test_case "simulation replay confirms" `Quick test_replay_confirms;
    Alcotest.test_case "coherent variant is deadlock-free" `Quick
      test_coherent_variant_is_free;
  ]
